/**
 * @file
 * Scheme-generic RLWE evaluator: the op pipeline BFV and CKKS share.
 *
 * Both schemes compute on the same object — a pair of domain-tagged
 * RNS residue polynomials over (a prefix of) one modulus chain — and
 * until this layer existed each scheme re-implemented the same
 * plumbing around it: operand domain alignment before a pointwise
 * dispatch, elision accounting for conversions skipped, the batched
 * device dispatch itself, per-tower host-NTT fallback when no device
 * is attached, the born-Eval encryption assembly (uniform mask
 * sampled directly in evaluation form), and the decrypt-side
 * c0 + c1*s inner product. RlweEvaluator owns all of that exactly
 * once; the scheme files shrink to scheme math — encoding, noise,
 * Delta/rescale arithmetic — and future shared machinery
 * (relinearisation key-switching, Galois rotations) is written here
 * once instead of per scheme.
 *
 * The evaluator also owns the host-side parallel fan-out for
 * independent per-(component, tower) units of host work (e.g. the
 * CKKS rescale's lift re-entry transforms): when the attached
 * device runs a worker pool, those units ride the same pool;
 * results are bit-identical to the serial loop either way.
 */

#ifndef RPU_RLWE_EVALUATOR_HH
#define RPU_RLWE_EVALUATOR_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "rlwe/residue_poly.hh"

namespace rpu {

class RpuDevice;

/**
 * Gadget-decomposed relinearisation (key-switching) key, the
 * scheme-generic half of ct x ct multiply: for every tower t of the
 * chain prefix it covers and every base-2^digitBits digit slot j,
 * an RLWE encryption of g_{t,j} * s^2 under s, where the gadget
 * factor g_{t,j} is the CRT unit vector that is B^j mod q_t and
 * 0 mod every other prime:
 *
 *   k0_{t,j} = a*s + e + g_{t,j}*s^2,   k1_{t,j} = -a .
 *
 * Summing digit-weighted key pairs over (t, j) therefore
 * reconstructs [c2]_{q_u} * s^2 exactly in every tower u — the
 * recomposition identity the tier-1 tests pin — while each digit
 * polynomial stays below B, keeping the noise each key's e
 * contributes to B-sized coefficients instead of q-sized ones.
 * Both key components are Eval-resident over the full prefix at
 * generation time, so the key-switch inner product is pure
 * pointwise launches; a lower-level ciphertext (CKKS after
 * rescales) reads the key through its tower prefix. Smaller
 * digitBits means more digits (more re-entry NTTs and pointwise
 * products) but less noise per multiply — the classic knob, here
 * visible directly in the DeviceStats ledger.
 */
struct RelinKey
{
    unsigned digitBits = 16;

    /** k[t][j] = {k0, k1} for tower t's digit j; ragged in j when
     *  tower widths differ (the last digit may be partial). */
    std::vector<std::vector<std::array<ResiduePoly, 2>>> k;

    /** Towers the key can relinearise (decomposition range). */
    size_t towerCount() const { return k.size(); }

    /** Total digit slots over the first @p towers towers. */
    size_t totalDigits(size_t towers) const
    {
        size_t d = 0;
        for (size_t t = 0; t < towers; ++t)
            d += k[t].size();
        return d;
    }
};

/** Shared op pipeline over one modulus chain (see file comment). */
class RlweEvaluator
{
  public:
    /** Residues of one integer polynomial: [tower][coefficient]. */
    using TowerPoly = std::vector<std::vector<u128>>;

    RlweEvaluator() = default;

    /**
     * Bind to the full modulus chain of @p basis: builds the
     * per-tower host twiddle tables and reference transforms (the
     * no-device fallback and the encrypt/decrypt side engine) and a
     * ResidueOps routing domain transitions over them.
     */
    RlweEvaluator(uint64_t n, const RnsBasis *basis);

    /** Route conversions, products, and transforms through @p device. */
    void attachDevice(std::shared_ptr<RpuDevice> device);

    bool deviceAttached() const { return device_ != nullptr; }
    std::shared_ptr<RpuDevice> device() const { return device_; }

    uint64_t ringDim() const { return n_; }
    const RnsBasis &basis() const;
    const Modulus &modulus(size_t t) const;

    /** Host reference transform for tower @p t's ring. */
    const NttContext &hostNtt(size_t t) const;

    /** Domain transitions / pointwise algebra over the full chain. */
    const ResidueOps &ops() const { return ops_; }

    // -- Domain plumbing -------------------------------------------------

    /**
     * Enter the evaluation domain once, at encode time: wrap
     * @p coeff_towers and forward-transform every tower in one
     * batched device dispatch (host transforms otherwise). This is
     * the only forward transform an encoded plaintext ever pays.
     */
    ResiduePoly enterEval(TowerPoly coeff_towers) const;

    /** Move both ciphertext components to @p target together. */
    void convertPair(ResiduePoly &c0, ResiduePoly &c1,
                     ResidueDomain target) const;

    // -- Component-pair ops ----------------------------------------------

    /** Tower-wise pair addition (domain-preserving, host). */
    std::array<ResiduePoly, 2> addPair(const ResiduePoly &a0,
                                       const ResiduePoly &a1,
                                       const ResiduePoly &b0,
                                       const ResiduePoly &b1) const;

    /** Tower-wise pair subtraction (domain-preserving, host). */
    std::array<ResiduePoly, 2> subPair(const ResiduePoly &a0,
                                       const ResiduePoly &a1,
                                       const ResiduePoly &b0,
                                       const ResiduePoly &b1) const;

    /**
     * Both ciphertext components times one shared Eval-resident
     * plaintext over the first @p towers primes — the homomorphic
     * multiply's entire op pipeline. Eval-resident components are
     * read in place (no copy, no transform; the skipped conversions
     * land in the device's elision ledger), Coeff-resident ones are
     * converted on copies so the inputs stay untouched; either way
     * the products go through one pointwise dispatch
     * (PointwiseMulBatched per pair serially, per-tower PointwiseMul
     * fan-out on a pooled device).
     */
    std::array<ResiduePoly, 2> mulPlainPair(const ResiduePoly &c0,
                                            const ResiduePoly &c1,
                                            const ResiduePoly &pt,
                                            size_t towers) const;

    // -- Ciphertext x ciphertext multiply --------------------------------

    /**
     * Scheme hook between tensor product and relinearisation: maps
     * the degree-2 ciphertext (c0, c1, c2) the tensor produced to
     * the one relinearise consumes. BFV's scale-and-round lives
     * here (and shrinks the extended chain back to the ciphertext
     * chain); CKKS needs none. The hook may return components in
     * either domain — a Coeff c2 lets relinearise skip its inverse
     * transform (the skip lands in the elision ledger).
     */
    using Degree2Hook = std::function<std::array<ResiduePoly, 3>(
        std::array<ResiduePoly, 3>)>;

    /**
     * Tensor product of two ciphertext pairs over their towers: the
     * four cross products a0b0, a0b1, a1b0, a1b1 go through one
     * pointwise dispatch and fold into the degree-2 ciphertext
     * (a0b0, a0b1 + a1b0, a1b1) with host tower adds. Eval-resident
     * operands are read in place (the four skipped conversions per
     * tower land in the elision ledger); Coeff-resident ones are
     * converted on copies. No transform runs on the Eval path —
     * residency makes the tensor product pure PointwiseMulBatched
     * launches.
     */
    std::array<ResiduePoly, 3> tensorPair(const ResiduePoly &a0,
                                          const ResiduePoly &a1,
                                          const ResiduePoly &b0,
                                          const ResiduePoly &b1) const;

    /**
     * Key-switch the degree-2 ciphertext back to degree 1 with
     * @p rk, exactly once, for every scheme: c2 leaves the
     * evaluation domain (one batched inverse pass — skipped and
     * elided when the scheme hook already returned it in Coeff),
     * is split into gadget digits, the digits re-enter in one
     * batched forward dispatch, and one pointwise dispatch runs the
     * 2 * totalDigits inner-product pairs against the key. The
     * digit-split transforms are annotated as keySwitchTransforms
     * in DeviceStats on top of the ordinary forward/inverse counts,
     * so workload elision ratios stay meaningful. Returns
     * (d0 + sum digit.*k0, d1 + sum digit.*k1), Eval-resident.
     */
    std::array<ResiduePoly, 2> relinearise(const ResiduePoly &d0,
                                           const ResiduePoly &d1,
                                           ResiduePoly d2,
                                           const RelinKey &rk) const;

    /**
     * The whole ct x ct multiply: tensorPair, then the scheme's
     * @p hook (if any) on the degree-2 ciphertext, then relinearise
     * with @p rk. This is the single pipeline both BFV and CKKS
     * route their mulCt through — the schemes contribute only the
     * hook (BFV's scale-and-round) and the scale/level bookkeeping.
     */
    std::array<ResiduePoly, 2> mulPair(const ResiduePoly &a0,
                                       const ResiduePoly &a1,
                                       const ResiduePoly &b0,
                                       const ResiduePoly &b1,
                                       const RelinKey &rk,
                                       const Degree2Hook &hook = {}) const;

    /**
     * Generate a gadget-decomposed relinearisation key over the
     * first s_res.size() towers (see RelinKey): per (tower, digit),
     * a fresh uniform mask sampled directly in evaluation form and
     * a fresh small error (uniform in [-noiseBound, noiseBound])
     * entering through one host forward transform — keygen stays
     * off the device, like encryptPair. s^2 is computed once per
     * tower as a pointwise square of the secret's evaluation form.
     */
    RelinKey makeRelinKey(const TowerPoly &s_res, uint64_t noiseBound,
                          Rng &rng, unsigned digitBits = 16) const;

    // -- Encrypt / decrypt common halves ---------------------------------

    /**
     * Assemble a born-Eval ciphertext pair over @p s_res.size()
     * towers: per tower, the uniform mask a is sampled directly in
     * evaluation form (uniform residues are uniform in either
     * domain, so no transform is spent on it), the secret and
     * message+error residues enter through one host forward
     * transform each, and c0 = a .* s + (e + m), c1 = -a — all
     * pointwise. The returned pair is Eval-resident; the device
     * issues no launch at all on this path (encryption-side
     * arithmetic stays off the device, like decryption).
     */
    std::array<ResiduePoly, 2> encryptPair(const TowerPoly &s_res,
                                           const TowerPoly &em_res,
                                           Rng &rng) const;

    /**
     * Decrypt-side inner product v = c0 + c1*s over the components'
     * active towers, returned as Coeff residues — the scheme's one
     * forced return to coefficients. Eval-resident components pay
     * one host inverse transform per tower (never a forward one);
     * Coeff-resident components use the host negacyclic product.
     * Independent towers fan across the device's worker pool when
     * one is running (bit-identical to the serial loop).
     */
    TowerPoly innerProduct(const ResiduePoly &c0, const ResiduePoly &c1,
                           const TowerPoly &s_res) const;

    // -- Rescale helpers -------------------------------------------------

    /**
     * Inverse-transform tower @p t of each Eval-resident polynomial
     * (one device launch per polynomial when attached, host
     * transforms otherwise) and return the Coeff residues; the
     * polynomials themselves are not modified. The dispatch the CKKS
     * rescale issues for the tower it drops.
     */
    std::vector<std::vector<u128>>
    inverseTower(const std::vector<const ResiduePoly *> &polys,
                 size_t t) const;

    /**
     * Forward-transform each polynomial's coefficient towers
     * against the chain primes starting at offset @p first (so
     * xs[i][t] enters tower first + t's evaluation domain) in one
     * batched device dispatch (host transforms otherwise). BFV's
     * base extension uses this to enter only the auxiliary towers
     * it just computed, reusing the ciphertext's existing Eval
     * towers for the rest of the extended chain.
     */
    std::vector<TowerPoly> forwardTowersAt(std::vector<TowerPoly> xs,
                                           size_t first) const;

    /**
     * Run @p fn(0..count-1), fanning the units across the attached
     * device's worker pool when it has one (serial loop otherwise).
     * Units must be independent — each writes its own outputs — so
     * the result is bit-identical to the serial loop; every unit is
     * joined before the first failure (if any) is rethrown.
     */
    void forEachUnit(size_t count,
                     const std::function<void(size_t)> &fn) const;

  private:
    uint64_t n_ = 0;
    const RnsBasis *basis_ = nullptr;
    std::vector<std::unique_ptr<TwiddleTable>> twiddles_;
    std::vector<std::unique_ptr<NttContext>> ntts_;
    ResidueOps ops_;
    std::shared_ptr<RpuDevice> device_;
};

} // namespace rpu

#endif // RPU_RLWE_EVALUATOR_HH
