/**
 * @file
 * Scheme-generic RLWE evaluator: the op pipeline BFV and CKKS share.
 *
 * Both schemes compute on the same object — a pair of domain-tagged
 * RNS residue polynomials over (a prefix of) one modulus chain — and
 * until this layer existed each scheme re-implemented the same
 * plumbing around it: operand domain alignment before a pointwise
 * dispatch, elision accounting for conversions skipped, the batched
 * device dispatch itself, per-tower host-NTT fallback when no device
 * is attached, the born-Eval encryption assembly (uniform mask
 * sampled directly in evaluation form), and the decrypt-side
 * c0 + c1*s inner product. RlweEvaluator owns all of that exactly
 * once; the scheme files shrink to scheme math — encoding, noise,
 * Delta/rescale arithmetic — and future shared machinery
 * (relinearisation key-switching, Galois rotations) is written here
 * once instead of per scheme.
 *
 * The evaluator also owns the host-side parallel fan-out for
 * independent per-(component, tower) units of host work (e.g. the
 * CKKS rescale's lift re-entry transforms): when the attached
 * device runs a worker pool, those units ride the same pool;
 * results are bit-identical to the serial loop either way.
 */

#ifndef RPU_RLWE_EVALUATOR_HH
#define RPU_RLWE_EVALUATOR_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "rlwe/residue_poly.hh"

namespace rpu {

class RpuDevice;

/** Shared op pipeline over one modulus chain (see file comment). */
class RlweEvaluator
{
  public:
    /** Residues of one integer polynomial: [tower][coefficient]. */
    using TowerPoly = std::vector<std::vector<u128>>;

    RlweEvaluator() = default;

    /**
     * Bind to the full modulus chain of @p basis: builds the
     * per-tower host twiddle tables and reference transforms (the
     * no-device fallback and the encrypt/decrypt side engine) and a
     * ResidueOps routing domain transitions over them.
     */
    RlweEvaluator(uint64_t n, const RnsBasis *basis);

    /** Route conversions, products, and transforms through @p device. */
    void attachDevice(std::shared_ptr<RpuDevice> device);

    bool deviceAttached() const { return device_ != nullptr; }
    std::shared_ptr<RpuDevice> device() const { return device_; }

    uint64_t ringDim() const { return n_; }
    const RnsBasis &basis() const;
    const Modulus &modulus(size_t t) const;

    /** Host reference transform for tower @p t's ring. */
    const NttContext &hostNtt(size_t t) const;

    /** Domain transitions / pointwise algebra over the full chain. */
    const ResidueOps &ops() const { return ops_; }

    // -- Domain plumbing -------------------------------------------------

    /**
     * Enter the evaluation domain once, at encode time: wrap
     * @p coeff_towers and forward-transform every tower in one
     * batched device dispatch (host transforms otherwise). This is
     * the only forward transform an encoded plaintext ever pays.
     */
    ResiduePoly enterEval(TowerPoly coeff_towers) const;

    /** Move both ciphertext components to @p target together. */
    void convertPair(ResiduePoly &c0, ResiduePoly &c1,
                     ResidueDomain target) const;

    // -- Component-pair ops ----------------------------------------------

    /** Tower-wise pair addition (domain-preserving, host). */
    std::array<ResiduePoly, 2> addPair(const ResiduePoly &a0,
                                       const ResiduePoly &a1,
                                       const ResiduePoly &b0,
                                       const ResiduePoly &b1) const;

    /** Tower-wise pair subtraction (domain-preserving, host). */
    std::array<ResiduePoly, 2> subPair(const ResiduePoly &a0,
                                       const ResiduePoly &a1,
                                       const ResiduePoly &b0,
                                       const ResiduePoly &b1) const;

    /**
     * Both ciphertext components times one shared Eval-resident
     * plaintext over the first @p towers primes — the homomorphic
     * multiply's entire op pipeline. Eval-resident components are
     * read in place (no copy, no transform; the skipped conversions
     * land in the device's elision ledger), Coeff-resident ones are
     * converted on copies so the inputs stay untouched; either way
     * the products go through one pointwise dispatch
     * (PointwiseMulBatched per pair serially, per-tower PointwiseMul
     * fan-out on a pooled device).
     */
    std::array<ResiduePoly, 2> mulPlainPair(const ResiduePoly &c0,
                                            const ResiduePoly &c1,
                                            const ResiduePoly &pt,
                                            size_t towers) const;

    // -- Encrypt / decrypt common halves ---------------------------------

    /**
     * Assemble a born-Eval ciphertext pair over @p s_res.size()
     * towers: per tower, the uniform mask a is sampled directly in
     * evaluation form (uniform residues are uniform in either
     * domain, so no transform is spent on it), the secret and
     * message+error residues enter through one host forward
     * transform each, and c0 = a .* s + (e + m), c1 = -a — all
     * pointwise. The returned pair is Eval-resident; the device
     * issues no launch at all on this path (encryption-side
     * arithmetic stays off the device, like decryption).
     */
    std::array<ResiduePoly, 2> encryptPair(const TowerPoly &s_res,
                                           const TowerPoly &em_res,
                                           Rng &rng) const;

    /**
     * Decrypt-side inner product v = c0 + c1*s over the components'
     * active towers, returned as Coeff residues — the scheme's one
     * forced return to coefficients. Eval-resident components pay
     * one host inverse transform per tower (never a forward one);
     * Coeff-resident components use the host negacyclic product.
     * Independent towers fan across the device's worker pool when
     * one is running (bit-identical to the serial loop).
     */
    TowerPoly innerProduct(const ResiduePoly &c0, const ResiduePoly &c1,
                           const TowerPoly &s_res) const;

    // -- Rescale helpers -------------------------------------------------

    /**
     * Inverse-transform tower @p t of each Eval-resident polynomial
     * (one device launch per polynomial when attached, host
     * transforms otherwise) and return the Coeff residues; the
     * polynomials themselves are not modified. The dispatch the CKKS
     * rescale issues for the tower it drops.
     */
    std::vector<std::vector<u128>>
    inverseTower(const std::vector<const ResiduePoly *> &polys,
                 size_t t) const;

    /**
     * Run @p fn(0..count-1), fanning the units across the attached
     * device's worker pool when it has one (serial loop otherwise).
     * Units must be independent — each writes its own outputs — so
     * the result is bit-identical to the serial loop; every unit is
     * joined before the first failure (if any) is rethrown.
     */
    void forEachUnit(size_t count,
                     const std::function<void(size_t)> &fn) const;

  private:
    uint64_t n_ = 0;
    const RnsBasis *basis_ = nullptr;
    std::vector<std::unique_ptr<TwiddleTable>> twiddles_;
    std::vector<std::unique_ptr<NttContext>> ntts_;
    ResidueOps ops_;
    std::shared_ptr<RpuDevice> device_;
};

} // namespace rpu

#endif // RPU_RLWE_EVALUATOR_HH
