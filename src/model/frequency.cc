#include "model/frequency.hh"

namespace rpu {

double
rpuFrequencyGhz(unsigned num_banks)
{
    // Fewer, larger SRAM macros run slower; beyond 128 banks the VDM
    // is no longer the critical path.
    if (num_banks <= 32)
        return 1.29;
    if (num_banks <= 64)
        return 1.53;
    return 1.68;
}

} // namespace rpu
