#include "model/energy.hh"

#include <sstream>

namespace rpu {

EnergyBreakdown
kernelEnergy(const CycleStats &s, const EnergyModelConfig &m)
{
    EnergyBreakdown e;
    e.lawUj = (double(s.mulLaneOps) * m.mulPj +
               double(s.addLaneOps) * m.addPj) *
              1e-6;
    e.vrfUj = double(s.vrfWordReads + s.vrfWordWrites) * m.vrfAccessPj *
              1e-6;
    e.vdmUj = double(s.vdmWordsRead + s.vdmWordsWritten) *
              m.vdmAccessPj * 1e-6;
    e.vbarUj = double(s.vbarWords) * m.vbarWordPj * 1e-6;
    e.sbarUj = double(s.sbarWords) * m.sbarWordPj * 1e-6;
    e.imUj = double(s.imFetches) * m.imFetchPj * 1e-6;
    e.sdmUj = double(s.sdmReads) * m.sdmAccessPj * 1e-6;
    return e;
}

std::string
EnergyBreakdown::report() const
{
    std::ostringstream os;
    os.precision(2);
    os << std::fixed;
    os << "LAW " << lawUj << " uJ (" << share(lawUj) << "%)  VRF "
       << vrfUj << " uJ (" << share(vrfUj) << "%)  VDM " << vdmUj
       << " uJ (" << share(vdmUj) << "%)  VBAR " << vbarUj << " uJ ("
       << share(vbarUj) << "%)  SBAR " << sbarUj << " uJ ("
       << share(sbarUj) << "%)  IM " << imUj << " uJ (" << share(imUj)
       << "%)  | total " << totalUj() << " uJ";
    return os.str();
}

} // namespace rpu
