#include "model/hbm.hh"

#include <cmath>

namespace rpu {

double
hbmTransferUs(uint64_t n, double bandwidth_gbps, unsigned bytes_per_element)
{
    const double bytes = double(n) * bytes_per_element;
    return bytes / (bandwidth_gbps * 1e9) * 1e6;
}

double
theoreticalNttUs(uint64_t n, unsigned num_hples, double freq_ghz)
{
    const double ops = double(n) * std::log2(double(n));
    return ops / (double(num_hples) * freq_ghz * 1e9) * 1e6;
}

} // namespace rpu
