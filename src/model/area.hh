/**
 * @file
 * Analytical area model for the RPU in GF 12nm (paper section VI-C).
 *
 * The paper's numbers come from Synopsys DC plus a commercial SRAM
 * compiler, neither of which is available here; this model substitutes
 * calibrated analytical component functions pinned to every datapoint
 * the paper publishes:
 *
 *  - SRAM macro areas: 512 B single-port = 2010 um^2 and 256 B =
 *    1818 um^2 (section VI-C) give the affine small-macro fit;
 *  - the (128,128) RPU totals 20.5 mm^2 (section I/VI);
 *  - HPLE (LAW engines) + VRF at 128 HPLEs is 12.61 mm^2 (the F1
 *    comparison in section VII);
 *  - VRF grows 1.5-2x per HPLE doubling, SBAR triples per doubling
 *    (5x for 128->256), VBAR doubles with banks beyond 64 at 128
 *    HPLEs, and (256,256) is ~1.2x the (256,32) area.
 *
 * Unit tests lock these properties (tests/test_models.cc).
 */

#ifndef RPU_MODEL_AREA_HH
#define RPU_MODEL_AREA_HH

#include <string>

#include "sim/arch_config.hh"

namespace rpu {

/** Calibration constants; defaults reproduce the paper's datapoints. */
struct AreaModelConfig
{
    // Small-macro affine fit through (256 B, 1818 um^2), (512 B,
    // 2010 um^2): area = base + slope * bytes.
    double smallMacroBaseUm2 = 1626.0;
    double smallMacroPerByteUm2 = 0.75;

    // Large macros (VDM banks, instruction memory) are denser.
    double largeMacroBaseUm2 = 10000.0;
    double largeMacroPerByteUm2 = 0.853;

    /** One LAW engine: 128b modular multiplier + adder + subtractor
     *  + two comparators. */
    double lawEngineMm2 = 0.0695;

    // Vector crossbar: per-bank wiring plus per-crosspoint switching.
    double vbarPerBankMm2 = 0.0076;
    double vbarPerCrosspointMm2 = 2.2e-5;

    // Shuffle crossbar: triples per HPLE doubling; the final doubling
    // to 256 costs 5x (paper section VI-C).
    double sbarAt4Mm2 = 0.0033;
    double sbarGrowthPerDoubling = 3.0;
    double sbarFinalDoublingFactor = 5.0;

    /** SDM + SRF + MRF + ARF + front-end. */
    double scalarUnitMm2 = 0.344;

    unsigned imMacros = 8; ///< 512 KiB IM built from 8 x 64 KiB banks
};

/** Component breakdown in mm^2 (the Fig. 5 categories). */
struct AreaBreakdown
{
    double im = 0;
    double vdm = 0;
    double vrf = 0;
    double lawEngine = 0;
    double vbar = 0;
    double sbar = 0;
    double scalarUnit = 0;

    double
    total() const
    {
        return im + vdm + vrf + lawEngine + vbar + sbar + scalarUnit;
    }

    std::string report() const;
};

/** Area of one design point. */
AreaBreakdown rpuArea(const RpuConfig &cfg,
                      const AreaModelConfig &model = {});

} // namespace rpu

#endif // RPU_MODEL_AREA_HH
