/**
 * @file
 * Energy/power model (paper Fig. 5c: 64K NTT on the (128,128) RPU
 * consumes 49.18 uJ at 7.44 W average, with the LAW engines at 66.7%,
 * VRF 19.3%, VDM 10.5%, VBAR 2.3%, SBAR 1.0%).
 *
 * Per-operation energies are applied to the cycle simulator's
 * structural access counts. The multiplier energy is calibrated from
 * the paper's own datapoint: each 128b modular multiplier dissipates
 * 104 mW, i.e. ~62 pJ per operation at 1.68 GHz.
 */

#ifndef RPU_MODEL_ENERGY_HH
#define RPU_MODEL_ENERGY_HH

#include <string>

#include "sim/cycle/stats.hh"

namespace rpu {

/** Per-operation energies in picojoules. */
struct EnergyModelConfig
{
    double mulPj = 59.0;       ///< 128b modular multiply (104 mW unit)
    double addPj = 2.2;        ///< 128b modular add/sub
    double vrfAccessPj = 1.33; ///< one 128b word, small slice macro
    /**
     * One 128b word from a VDM bank. Calibrated so the 64K NTT
     * reproduces Fig. 5c's ~10% VDM share with this generator's
     * (lower) VDM traffic; see EXPERIMENTS.md.
     */
    double vdmAccessPj = 11.0;
    double vbarWordPj = 0.72;
    double sbarWordPj = 0.5;
    double sdmAccessPj = 2.0;
    double imFetchPj = 8.0;
};

/** Component energy breakdown in microjoules (Fig. 5c categories). */
struct EnergyBreakdown
{
    double lawUj = 0;
    double vrfUj = 0;
    double vdmUj = 0;
    double vbarUj = 0;
    double sbarUj = 0;
    double imUj = 0;
    double sdmUj = 0;

    double
    totalUj() const
    {
        return lawUj + vrfUj + vdmUj + vbarUj + sbarUj + imUj + sdmUj;
    }

    /** Percentage share of one component. */
    double
    share(double component_uj) const
    {
        const double t = totalUj();
        return t == 0 ? 0 : 100.0 * component_uj / t;
    }

    std::string report() const;
};

/** Apply per-op energies to a simulation's access counts. */
EnergyBreakdown kernelEnergy(const CycleStats &stats,
                             const EnergyModelConfig &model = {});

/** Average power in watts for an energy/runtime pair. */
inline double
averagePowerW(double energy_uj, double runtime_us)
{
    return runtime_us == 0 ? 0 : energy_uj / runtime_us;
}

} // namespace rpu

#endif // RPU_MODEL_ENERGY_HH
