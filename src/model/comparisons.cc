#include "model/comparisons.hh"

namespace rpu {

PaperReference
paperReference()
{
    return PaperReference{};
}

F1Comparison
f1Comparison()
{
    return F1Comparison{};
}

double
paperCpuSpeedup128b(uint64_t n)
{
    // Fig. 10: 545x at 1K growing to ~1485x at 64K (read from the
    // figure; 1K and 64K are quoted in the text).
    switch (n) {
      case 1024: return 545.0;
      case 4096: return 780.0;
      case 16384: return 1100.0;
      case 65536: return 1485.0;
      default: return 0.0;
    }
}

} // namespace rpu
