/**
 * @file
 * HBM-contention model for multi-lane / multi-launch device activity.
 *
 * The paper sizes a single RPU against a 512 GB/s HBM2 roofline
 * (section VI-G; see hbm.hh for the Fig. 9 transfer model). One
 * launch at a time, the VDM double-buffers staging and drain behind
 * compute, so the modelled cost of a launch is its cycle-simulated
 * program length alone — that is exactly what the per-worker cycle
 * ledger (PR 5) records. The moment several lanes of the same device
 * are occupied concurrently, they share the one HBM interface: each
 * lane's staged+drained words no longer hide fully behind its own
 * compute, and every *other* active lane's traffic eats into the
 * overlap window.
 *
 * This model keeps the uncontended ledger exact and adds the
 * contention term on top:
 *
 *   staging(words)       = ceil(words * bytesPerElement / bytesPerCycle)
 *   busy(compute, words, lanes)
 *       = compute                                  (lanes <= 1)
 *       = compute + (lanes - 1) * staging(words)   (lanes >  1)
 *
 * i.e. with k concurrently occupied lanes a launch's staging/drain
 * traffic is re-exposed once per competing lane. lanes == 1
 * reproduces the PR 5 per-worker cycle ledger bit for bit (full
 * staging/drain overlap at full bandwidth), and the contended cost is
 * strictly larger as soon as a second lane is occupied and the launch
 * moves any words — the observability property the sharding bench
 * PASS-gates.
 */

#ifndef RPU_MODEL_CONTENTION_HH
#define RPU_MODEL_CONTENTION_HH

#include <cstdint>

namespace rpu {

/** See the file comment. Default constants follow the paper: 512 GB/s
 *  HBM2, the 64-bank 1.53 GHz design clock, 16-byte elements (one
 *  u128 scratchpad word per coefficient). */
struct HbmContentionModel
{
    double bandwidthGBps = 512.0;
    double clockGhz = 1.53;
    unsigned bytesPerElement = 16;

    /** HBM words per device cycle at full bandwidth. */
    double bytesPerCycle() const { return bandwidthGBps / clockGhz; }

    /** Cycles to stage (or drain) @p words at full bandwidth. */
    uint64_t stagingCycles(uint64_t words) const;

    /**
     * Modelled busy cycles of one launch: @p computeCycles alone when
     * the launch has the interface to itself, plus one staging pass
     * per competing lane otherwise.
     */
    uint64_t busyCycles(uint64_t computeCycles, uint64_t words,
                        unsigned lanes) const;
};

} // namespace rpu

#endif // RPU_MODEL_CONTENTION_HH
