/**
 * @file
 * Clock frequency model. The RPU runs a single clock domain limited by
 * the banked VDM (paper section IV-B3): 32 banks -> 1.29 GHz,
 * 64 -> 1.53 GHz, 128 and 256 -> 1.68 GHz.
 */

#ifndef RPU_MODEL_FREQUENCY_HH
#define RPU_MODEL_FREQUENCY_HH

#include "sim/arch_config.hh"

namespace rpu {

/** Design frequency in GHz for a bank count (paper's VDM table). */
double rpuFrequencyGhz(unsigned num_banks);

/** Convenience overload. */
inline double
rpuFrequencyGhz(const RpuConfig &cfg)
{
    return rpuFrequencyGhz(cfg.numBanks);
}

} // namespace rpu

#endif // RPU_MODEL_FREQUENCY_HH
