/**
 * @file
 * Published reference datapoints used for side-by-side comparisons:
 * the paper's own headline numbers (for EXPERIMENTS.md) and the
 * F1-accelerator comparison of section VII.
 */

#ifndef RPU_MODEL_COMPARISONS_HH
#define RPU_MODEL_COMPARISONS_HH

#include <cstdint>

namespace rpu {

/** Headline numbers the paper reports for the (128,128) RPU. */
struct PaperReference
{
    double ntt64kRuntimeUs = 6.7;
    double areaMm2 = 20.5;
    double ntt64kEnergyUj = 49.18;
    double averagePowerW = 7.44;
    double cpuSpeedup128b64k = 1485.0;
    double optimizedVsNaive = 1.8;
    // Fig. 5c shares (percent).
    double lawSharePct = 66.7;
    double vrfSharePct = 19.3;
    double vdmSharePct = 10.5;
    double vbarSharePct = 2.3;
    double sbarSharePct = 1.0;
};

PaperReference paperReference();

/**
 * F1 comparison (paper section VII): one F1 compute cluster's NTT
 * functional unit + register file, scaled 4x from 32b to 128b.
 */
struct F1Comparison
{
    double f1Ntt16kNs = 2864.0;
    double f1AreaMm2 = 11.32;
    double rpuPaperNtt16kNs = 1500.0;
    double rpuPaperAreaMm2 = 12.61;
    unsigned maxF1PolyDegree = 16384; ///< F1's ring-size ceiling
};

F1Comparison f1Comparison();

/**
 * Paper Fig. 10 reference speedups over the 32-core EPYC 7502 for
 * 128-bit data (used for shape comparison in the fig10 bench).
 */
double paperCpuSpeedup128b(uint64_t n);

} // namespace rpu

#endif // RPU_MODEL_COMPARISONS_HH
