/**
 * @file
 * Off-chip memory and ideal-compute models for Fig. 9.
 *
 * The VDM double-buffers against a 512 GB/s HBM2 (paper section VI-G,
 * following F1 and A100 assumptions). The "theoretical" latency is
 * the paper's ideal bound: n*log2(n) butterfly-multiplies spread
 * perfectly across the HPLEs with no data movement or dependences.
 */

#ifndef RPU_MODEL_HBM_HH
#define RPU_MODEL_HBM_HH

#include <cstdint>

namespace rpu {

/** HBM2 transfer time (one direction) for an n-element ring, in us. */
double hbmTransferUs(uint64_t n, double bandwidth_gbps = 512.0,
                     unsigned bytes_per_element = 16);

/** Ideal NTT latency n*log2(n) / (HPLEs * f) in us (paper section VI-G). */
double theoreticalNttUs(uint64_t n, unsigned num_hples, double freq_ghz);

} // namespace rpu

#endif // RPU_MODEL_HBM_HH
