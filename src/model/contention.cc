#include "model/contention.hh"

#include <cmath>

namespace rpu {

uint64_t
HbmContentionModel::stagingCycles(uint64_t words) const
{
    if (words == 0)
        return 0;
    const double bytes = double(words) * double(bytesPerElement);
    const double cycles = bytes / bytesPerCycle();
    // A launch that moves any words pays at least one cycle, so the
    // contention term can never round a real transfer to invisible.
    return std::max<uint64_t>(1, uint64_t(std::ceil(cycles)));
}

uint64_t
HbmContentionModel::busyCycles(uint64_t computeCycles, uint64_t words,
                               unsigned lanes) const
{
    if (lanes <= 1)
        return computeCycles;
    return computeCycles + uint64_t(lanes - 1) * stagingCycles(words);
}

} // namespace rpu
