#include "model/area.hh"

#include <cmath>
#include <sstream>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace rpu {

namespace {

double
smallMacroUm2(double bytes, const AreaModelConfig &m)
{
    return m.smallMacroBaseUm2 + m.smallMacroPerByteUm2 * bytes;
}

double
largeMacroUm2(double bytes, const AreaModelConfig &m)
{
    return m.largeMacroBaseUm2 + m.largeMacroPerByteUm2 * bytes;
}

} // namespace

AreaBreakdown
rpuArea(const RpuConfig &cfg, const AreaModelConfig &m)
{
    cfg.validate();
    const double H = cfg.numHples;
    const double B = cfg.numBanks;

    AreaBreakdown a;

    // Instruction memory: fixed 512 KiB in several large banks.
    a.im = m.imMacros *
           largeMacroUm2(double(arch::kImBytes) / m.imMacros, m) * 1e-6;

    // VDM: `numBanks` large macros covering the configured capacity.
    a.vdm = B * largeMacroUm2(double(cfg.vdmBytes) / B, m) * 1e-6;

    // VRF: 64 regs x 512 lanes x 16 B = 512 KiB total, divided into
    // per-HPLE slices of 16 single-port macros (4 registers stacked
    // per macro, paper section IV-B1). Smaller slices map onto less
    // efficient macros, which is why VRF area grows 1.5-2x per HPLE
    // doubling.
    const double vrf_bytes = double(arch::kNumVregs) *
                             arch::kVectorLength * arch::kWordBytes;
    const double macro_bytes = vrf_bytes / (16.0 * H);
    a.vrf = 16.0 * H * smallMacroUm2(macro_bytes, m) * 1e-6;

    a.lawEngine = H * m.lawEngineMm2;

    a.vbar = m.vbarPerBankMm2 * B + m.vbarPerCrosspointMm2 * H * B;

    const double doublings = std::log2(std::max(H, 4.0) / 4.0);
    if (H <= 128) {
        a.sbar = m.sbarAt4Mm2 * std::pow(m.sbarGrowthPerDoubling,
                                         doublings);
    } else {
        const double at128 = m.sbarAt4Mm2 *
                             std::pow(m.sbarGrowthPerDoubling, 5.0);
        a.sbar = at128 * std::pow(m.sbarFinalDoublingFactor,
                                  doublings - 5.0);
    }

    a.scalarUnit = m.scalarUnitMm2;
    return a;
}

std::string
AreaBreakdown::report() const
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "IM " << im << "  VDM " << vdm << "  VRF " << vrf << "  LAW "
       << lawEngine << "  VBAR " << vbar << "  SBAR " << sbar
       << "  scalar " << scalarUnit << "  | total " << total() << " mm^2";
    return os.str();
}

} // namespace rpu
