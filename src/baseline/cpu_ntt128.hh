/**
 * @file
 * 128-bit CPU baseline NTT (the "CPU-128b" series of Fig. 10).
 *
 * Uses Montgomery-form twiddles so each butterfly costs one wide
 * multiply + one reduction, the best a 64-bit CPU can reasonably do
 * for 128-bit coefficients without vector units — which is exactly
 * the gap the RPU's native 128-bit LAW engines exploit.
 */

#ifndef RPU_BASELINE_CPU_NTT128_HH
#define RPU_BASELINE_CPU_NTT128_HH

#include <functional>
#include <vector>

#include "poly/twiddle.hh"

namespace rpu {

/** Precomputed 128-bit negacyclic NTT, optionally multithreaded. */
class CpuNtt128
{
  public:
    explicit CpuNtt128(const TwiddleTable &tw) : tw_(tw) {}

    /** In-place forward NTT (natural in, bit-reversed out). */
    void forward(std::vector<u128> &x, unsigned threads = 1) const;

    /** In-place inverse NTT (bit-reversed in, natural out). */
    void inverse(std::vector<u128> &x, unsigned threads = 1) const;

  private:
    const TwiddleTable &tw_;
};

} // namespace rpu

#endif // RPU_BASELINE_CPU_NTT128_HH
