/**
 * @file
 * High-performance CPU baseline: 64-bit negacyclic NTT with Harvey /
 * Shoup butterflies, optionally multithreaded.
 *
 * This is the "CPU-64b" series of the paper's Fig. 10. The paper
 * measured OpenFHE kernels on a 32-core EPYC 7502; we substitute a
 * tuned from-scratch implementation on the host machine (the shape of
 * the comparison — speedup growing with ring size and with element
 * width — is the reproduction target, not absolute values).
 */

#ifndef RPU_BASELINE_CPU_NTT64_HH
#define RPU_BASELINE_CPU_NTT64_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "modmath/mod64.hh"

namespace rpu {

/** Precomputed 64-bit negacyclic NTT over Z_q[x]/(x^n + 1). */
class CpuNtt64
{
  public:
    /** @p q must be prime with q == 1 (mod 2n), below 2^62. */
    CpuNtt64(uint64_t q, uint64_t n);

    uint64_t n() const { return n_; }
    const Modulus64 &modulus() const { return mod_; }

    /** In-place forward NTT (natural in, bit-reversed out). */
    void forward(std::vector<uint64_t> &x, unsigned threads = 1) const;

    /** In-place inverse NTT (bit-reversed in, natural out). */
    void inverse(std::vector<uint64_t> &x, unsigned threads = 1) const;

    /** Naive negacyclic product for validation. */
    std::vector<uint64_t> mulNaive(const std::vector<uint64_t> &a,
                                   const std::vector<uint64_t> &b) const;

  private:
    void forwardRange(std::vector<uint64_t> &x, uint64_t m, uint64_t t,
                      uint64_t i_begin, uint64_t i_end) const;
    void inverseRange(std::vector<uint64_t> &x, uint64_t m, uint64_t t,
                      uint64_t i_begin, uint64_t i_end) const;

    Modulus64 mod_;
    uint64_t n_;
    unsigned log_n_;
    std::vector<uint64_t> roots_;       ///< psi^bitrev(j)
    std::vector<uint64_t> roots_shoup_;
    std::vector<uint64_t> inv_roots_;
    std::vector<uint64_t> inv_roots_shoup_;
    uint64_t n_inv_;
    uint64_t n_inv_shoup_;
};

/**
 * Median wall-clock microseconds of fn() over @p iters runs
 * (shared timing helper for the Fig. 10 bench).
 */
double medianRuntimeUs(unsigned iters, const std::function<void()> &fn);

} // namespace rpu

#endif // RPU_BASELINE_CPU_NTT64_HH
