#include "baseline/cpu_ntt128.hh"

#include <thread>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace rpu {

namespace {

void
parallelFor(unsigned threads, uint64_t count,
            const std::function<void(uint64_t, uint64_t)> &fn)
{
    if (threads <= 1 || count < 2 * threads) {
        fn(0, count);
        return;
    }
    std::vector<std::thread> pool;
    const uint64_t chunk = divCeil(count, threads);
    for (unsigned t = 0; t < threads; ++t) {
        const uint64_t begin = std::min<uint64_t>(t * chunk, count);
        const uint64_t end = std::min<uint64_t>(begin + chunk, count);
        if (begin < end)
            pool.emplace_back(fn, begin, end);
    }
    for (auto &th : pool)
        th.join();
}

} // namespace

void
CpuNtt128::forward(std::vector<u128> &x, unsigned threads) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch");
    const Modulus &mod = tw_.modulus();

    uint64_t t = n;
    for (uint64_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        const unsigned th = (m >= 64 && t >= 64) ? threads : 1;
        parallelFor(th, m, [&](uint64_t begin, uint64_t end) {
            for (uint64_t i = begin; i < end; ++i) {
                const u128 w = tw_.rootPowerMont(m + i);
                u128 *lo = x.data() + 2 * i * t;
                u128 *hi = lo + t;
                for (uint64_t j = 0; j < t; ++j) {
                    const u128 u = lo[j];
                    const u128 v = mod.mulMontNormal(w, hi[j]);
                    lo[j] = mod.add(u, v);
                    hi[j] = mod.sub(u, v);
                }
            }
        });
    }
}

void
CpuNtt128::inverse(std::vector<u128> &x, unsigned threads) const
{
    const uint64_t n = tw_.n();
    rpu_assert(x.size() == n, "size mismatch");
    const Modulus &mod = tw_.modulus();

    uint64_t t = 1;
    for (uint64_t m = n >> 1; m >= 1; m >>= 1) {
        const unsigned th = (m >= 64 && t >= 64) ? threads : 1;
        parallelFor(th, m, [&](uint64_t begin, uint64_t end) {
            for (uint64_t i = begin; i < end; ++i) {
                const u128 w_inv = tw_.invRootPowerMont(m + i);
                u128 *lo = x.data() + 2 * i * t;
                u128 *hi = lo + t;
                for (uint64_t j = 0; j < t; ++j) {
                    const u128 a = lo[j];
                    const u128 b = hi[j];
                    lo[j] = mod.add(a, b);
                    hi[j] = mod.mulMontNormal(w_inv, mod.sub(a, b));
                }
            }
        });
        t <<= 1;
    }
    const u128 scale = tw_.nInvMont();
    for (auto &v : x)
        v = mod.mulMontNormal(scale, v);
}

} // namespace rpu
