#include "baseline/cpu_ntt64.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "modmath/primegen.hh"

namespace rpu {

CpuNtt64::CpuNtt64(uint64_t q, uint64_t n) : mod_(q), n_(n)
{
    rpu_assert(isPow2(n) && n >= 4, "invalid ring dimension");
    rpu_assert((q - 1) % (2 * n) == 0, "q != 1 mod 2n");
    log_n_ = log2Floor(n);

    const uint64_t psi = uint64_t(primitiveRoot2n(q, n));
    const uint64_t psi_inv = mod_.inv(psi);

    roots_.resize(n);
    inv_roots_.resize(n);
    roots_shoup_.resize(n);
    inv_roots_shoup_.resize(n);
    std::vector<uint64_t> fwd(n), inv(n);
    fwd[0] = 1;
    inv[0] = 1;
    for (uint64_t i = 1; i < n; ++i) {
        fwd[i] = mod_.mul(fwd[i - 1], psi);
        inv[i] = mod_.mul(inv[i - 1], psi_inv);
    }
    for (uint64_t j = 0; j < n; ++j) {
        const uint64_t r = bitReverse(j, log_n_);
        roots_[j] = fwd[r];
        inv_roots_[j] = inv[r];
        roots_shoup_[j] = mod_.shoupPrecompute(roots_[j]);
        inv_roots_shoup_[j] = mod_.shoupPrecompute(inv_roots_[j]);
    }
    n_inv_ = mod_.inv(n % q);
    n_inv_shoup_ = mod_.shoupPrecompute(n_inv_);
}

void
CpuNtt64::forwardRange(std::vector<uint64_t> &x, uint64_t m, uint64_t t,
                       uint64_t i_begin, uint64_t i_end) const
{
    for (uint64_t i = i_begin; i < i_end; ++i) {
        const uint64_t w = roots_[m + i];
        const uint64_t ws = roots_shoup_[m + i];
        uint64_t *lo = x.data() + 2 * i * t;
        uint64_t *hi = lo + t;
        for (uint64_t j = 0; j < t; ++j) {
            const uint64_t u = lo[j];
            const uint64_t v = mod_.mulShoup(w, ws, hi[j]);
            lo[j] = mod_.add(u, v);
            hi[j] = mod_.sub(u, v);
        }
    }
}

void
CpuNtt64::inverseRange(std::vector<uint64_t> &x, uint64_t m, uint64_t t,
                       uint64_t i_begin, uint64_t i_end) const
{
    for (uint64_t i = i_begin; i < i_end; ++i) {
        const uint64_t w = inv_roots_[m + i];
        const uint64_t ws = inv_roots_shoup_[m + i];
        uint64_t *lo = x.data() + 2 * i * t;
        uint64_t *hi = lo + t;
        for (uint64_t j = 0; j < t; ++j) {
            const uint64_t a = lo[j];
            const uint64_t b = hi[j];
            lo[j] = mod_.add(a, b);
            hi[j] = mod_.mulShoup(w, ws, mod_.sub(a, b));
        }
    }
}

namespace {

/** Split [0, count) across threads and run fn(begin, end) on each. */
void
parallelFor(unsigned threads, uint64_t count,
            const std::function<void(uint64_t, uint64_t)> &fn)
{
    if (threads <= 1 || count < 2 * threads) {
        fn(0, count);
        return;
    }
    std::vector<std::thread> pool;
    const uint64_t chunk = divCeil(count, threads);
    for (unsigned t = 0; t < threads; ++t) {
        const uint64_t begin = std::min<uint64_t>(t * chunk, count);
        const uint64_t end = std::min<uint64_t>(begin + chunk, count);
        if (begin < end)
            pool.emplace_back(fn, begin, end);
    }
    for (auto &th : pool)
        th.join();
}

} // namespace

void
CpuNtt64::forward(std::vector<uint64_t> &x, unsigned threads) const
{
    rpu_assert(x.size() == n_, "size mismatch");
    uint64_t t = n_;
    for (uint64_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        // Only parallelise stages with enough independent groups to
        // amortise the fork/join barrier.
        const unsigned th = (m >= 64 && t >= 64) ? threads : 1;
        parallelFor(th, m, [&](uint64_t b, uint64_t e) {
            forwardRange(x, m, t, b, e);
        });
    }
}

void
CpuNtt64::inverse(std::vector<uint64_t> &x, unsigned threads) const
{
    rpu_assert(x.size() == n_, "size mismatch");
    uint64_t t = 1;
    for (uint64_t m = n_ >> 1; m >= 1; m >>= 1) {
        const unsigned th = (m >= 64 && t >= 64) ? threads : 1;
        parallelFor(th, m, [&](uint64_t b, uint64_t e) {
            inverseRange(x, m, t, b, e);
        });
        t <<= 1;
    }
    for (auto &v : x)
        v = mod_.mulShoup(n_inv_, n_inv_shoup_, v);
}

std::vector<uint64_t>
CpuNtt64::mulNaive(const std::vector<uint64_t> &a,
                   const std::vector<uint64_t> &b) const
{
    std::vector<uint64_t> r(n_, 0);
    for (uint64_t i = 0; i < n_; ++i) {
        for (uint64_t j = 0; j < n_; ++j) {
            const uint64_t p = mod_.mul(a[i], b[j]);
            const uint64_t k = i + j;
            if (k < n_)
                r[k] = mod_.add(r[k], p);
            else
                r[k - n_] = mod_.sub(r[k - n_], p);
        }
    }
    return r;
}

double
medianRuntimeUs(unsigned iters, const std::function<void()> &fn)
{
    std::vector<double> samples;
    samples.reserve(iters);
    for (unsigned i = 0; i < iters; ++i) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto stop = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double, std::micro>(stop - start)
                .count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace rpu
