/**
 * @file
 * Interactive design-space explorer: evaluate any (ring size, HPLEs,
 * banks, multiplier) design point the way the paper's simulator-driven
 * DSE does (section VI), printing runtime, area, energy, power and
 * performance-per-area.
 *
 * Usage:
 *   ./build/examples/design_space_explorer                # default tour
 *   ./build/examples/design_space_explorer n H B          # one point
 *   ./build/examples/design_space_explorer 65536 128 128
 */

#include <cstdio>
#include <cstdlib>

#include "model/hbm.hh"
#include "rpu/runner.hh"

using namespace rpu;

namespace {

void
evaluatePoint(const NttRunner &runner, unsigned h, unsigned b)
{
    RpuConfig cfg;
    cfg.numHples = h;
    cfg.numBanks = b;
    NttCodegenOptions opts;
    opts.scheduleConfig = cfg;
    const NttKernel kernel = runner.makeKernel(opts);
    const KernelMetrics m = runner.evaluate(kernel, cfg);

    std::printf("\n--- n=%llu on %s ---\n",
                (unsigned long long)runner.n(), cfg.name().c_str());
    std::printf("  program: %zu instructions (%llu butterflies, %llu "
                "shuffles)\n",
                kernel.program.size(),
                (unsigned long long)m.cycle.mix.butterflies,
                (unsigned long long)m.cycle.mix.shuffles);
    std::printf("  runtime: %llu cycles @ %.2f GHz = %.3f us "
                "(theory %.3f us, HBM %.3f us)\n",
                (unsigned long long)m.cycle.cycles, m.freqGhz,
                m.runtimeUs,
                theoreticalNttUs(runner.n(), h, m.freqGhz),
                hbmTransferUs(runner.n()));
    std::printf("  area:    %s\n", m.area.report().c_str());
    std::printf("  energy:  %s\n", m.energy.report().c_str());
    std::printf("  power:   %.2f W   perf/area: %.5f\n", m.powerW,
                m.perfPerArea());
    std::printf("  stalls:  %llu busyboard, %llu queue-full; "
                "utilisation LS %.0f%% CU %.0f%% SH %.0f%%\n",
                (unsigned long long)m.cycle.busyboardStallCycles,
                (unsigned long long)m.cycle.queueFullStallCycles,
                100.0 * m.cycle.ls.utilisation(m.cycle.cycles),
                100.0 * m.cycle.compute.utilisation(m.cycle.cycles),
                100.0 * m.cycle.shuffle.utilisation(m.cycle.cycles));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 4) {
        const uint64_t n = std::strtoull(argv[1], nullptr, 0);
        const unsigned h = unsigned(std::strtoul(argv[2], nullptr, 0));
        const unsigned b = unsigned(std::strtoul(argv[3], nullptr, 0));
        NttRunner runner(n, 124);
        evaluatePoint(runner, h, b);
        return 0;
    }

    std::printf("RPU design-space explorer (pass: n HPLEs banks for a "
                "single point)\n");
    // Default tour: the paper's flagship and its neighbours.
    NttRunner runner(65536, 124);
    evaluatePoint(runner, 128, 128);
    evaluatePoint(runner, 64, 64);
    evaluatePoint(runner, 256, 256);
    evaluatePoint(runner, 4, 32);
    return 0;
}
