/**
 * @file
 * Multi-tenant serving tour: four tenants, one RPU, cross-tenant
 * batching.
 *
 * Each tenant opens a Session — its own CKKS parameter set, keys,
 * and deterministic randomness derived from the tenant id — and
 * submits encrypt -> multiply -> rescale -> decrypt requests to the
 * shared HeServer. The server admits them through a bounded queue
 * with per-tenant fairness lanes, coalesces compatible requests from
 * *different tenants* into shared device dispatches, and splits the
 * device's counter deltas back into per-tenant ledgers.
 *
 * The walk-through shows the three serving claims on live output:
 * responses equal the per-tenant serial reference exactly, the
 * device ledger records far fewer launches than serial execution
 * would pay, and a full queue rejects with a status instead of
 * blocking.
 *
 * Build & run:   ./build/examples/multi_tenant_serve
 */

#include <cstdio>
#include <vector>

#include "rpu/device.hh"
#include "serve/server.hh"

using namespace rpu;
using serve::HeServer;
using serve::RequestOp;
using serve::ServeConfig;
using serve::ServeResponse;
using serve::Session;
using serve::SubmitStatus;

using Cplx = std::complex<double>;

int
main()
{
    // 1. One device, one server, four tenants with identical
    //    parameter sets (equal parameters => equal kernel class =>
    //    their launches can merge).
    CkksParams params;
    params.n = 1024;
    params.towers = 3;
    params.towerBits = 45;

    ServeConfig cfg;
    cfg.queueCapacity = 32;
    cfg.maxPerTenant = 2; // fairness: per tenant, per dispatch batch
    cfg.maxCoalesce = 8;
    cfg.startPaused = true; // queue first, dispatch later (for demo)

    auto device = std::make_shared<RpuDevice>();
    HeServer server(cfg, device);
    for (uint64_t id = 1; id <= 4; ++id)
        server.addTenant({id, params, 30});
    server.prewarm();
    std::printf("4 tenants on one RPU, kernel class %s...\n",
                server.tenant(1)->kernelClass().substr(0, 24).c_str());

    // 2. Every tenant submits two multiply-rescale requests. The
    //    paused server queues them all, so the dispatcher sees the
    //    full cross-tenant batch at once.
    struct Issued
    {
        uint64_t tenant, seq;
        std::vector<Cplx> a, b;
        std::future<ServeResponse> response;
    };
    std::vector<Issued> issued;
    for (uint64_t seq = 0; seq < 2; ++seq) {
        for (uint64_t id = 1; id <= 4; ++id) {
            Issued r;
            r.tenant = id;
            r.seq = seq;
            r.a = {Cplx(0.25 * double(id), -0.5), Cplx(1.5, 0.125)};
            r.b = {Cplx(2.0, 0.0), Cplx(0.5, double(seq))};
            auto sub = server.submit(id, RequestOp::MulPlainRescale,
                                     r.a, r.b);
            if (sub.status != SubmitStatus::Accepted)
                return 1;
            r.response = std::move(sub.response);
            issued.push_back(std::move(r));
        }
    }

    const DeviceStats before = device->stats();
    server.start();
    server.shutdown(); // graceful drain: every future resolves
    const DeviceStats window = device->statsSince(before);

    // 3. Responses are bit-identical to running each tenant alone —
    //    cross-tenant batching is invisible to tenants.
    for (auto &r : issued) {
        const ServeResponse resp = r.response.get();
        const Session *sess = server.tenant(r.tenant);
        if (resp.values !=
            sess->runSerial(RequestOp::MulPlainRescale, r.a, r.b, r.seq))
            return 1;
        if (r.tenant == 1)
            std::printf("tenant %llu seq %llu: chunk of %zu, "
                        "(%.3f, %.3f) ~ expected (%.3f, %.3f)\n",
                        (unsigned long long)r.tenant,
                        (unsigned long long)r.seq, resp.chunkRequests,
                        resp.values[0].real(), resp.values[0].imag(),
                        (r.a[0] * r.b[0]).real(),
                        (r.a[0] * r.b[0]).imag());
    }

    // 4. The ledger: 8 serial requests would pay 5 launches each.
    std::printf("\ndevice window: %llu launches for 8 requests "
                "(serial execution pays %u)\n",
                (unsigned long long)window.launches, 8 * 5);
    for (uint64_t id = 1; id <= 4; ++id) {
        const auto acct = server.tenant(id)->accounting();
        std::printf("  tenant %llu: %llu completed, %llu coalesced, "
                    "%.2f launch share, %.0f cycle share\n",
                    (unsigned long long)id,
                    (unsigned long long)acct.completed,
                    (unsigned long long)acct.coalesced,
                    acct.launchShare, acct.cycleShare);
    }

    // 5. Backpressure: submits past the queue bound reject with a
    //    status instead of blocking the caller (the server is shut
    //    down, so this one reports the drain).
    auto late = server.submit(1, RequestOp::MulPlainRescale,
                              issued[0].a, issued[0].b);
    std::printf("\nsubmit after shutdown: %s\n",
                serve::submitStatusName(late.status));
    return 0;
}
