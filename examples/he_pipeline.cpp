/**
 * @file
 * The paper's Fig. 1 pipeline, end to end: a synthetic "image" is
 * vectorised, RLWE-encrypted into two RNS-resident ciphertext
 * polynomials, and computed on homomorphically on the RPU functional
 * simulator through the RpuDevice layer.
 *
 * Workload 1 (BFV, exact): brighten an encrypted image (homomorphic
 * add) and apply a 2x scaling (plaintext multiply), then decrypt and
 * check against the plaintext computation. Ciphertexts live
 * evaluation-domain resident in the RNS towers from encryption
 * onward, so the homomorphic chain issues only pointwise launches —
 * the stage fails if any device forward NTT runs.
 *
 * Workload 2 (CKKS, approximate): a slot-wise dot product of two
 * encrypted feature vectors with plaintext weights — mulPlain +
 * mulPlain + add + rescale, dispatched to the same shared RPU device
 * through the same scheme-generic evaluator — then decrypt and check
 * the slot values against plaintext complex arithmetic.
 *
 * Both workloads then go ciphertext x ciphertext: BFV computes an
 * encrypted dot product of the image against an encrypted weight
 * vector (the classic reversal trick — coefficient n-1 of u(x) *
 * rev(v)(x) is <u, v>, and i+j = n-1 never wraps the negacyclic
 * sign), CKKS multiplies two encrypted vectors slot-wise and
 * rescales. Each multiply routes through the evaluator's shared
 * tensor + gadget-relinearisation pipeline and prints the
 * DeviceStats ledger with the key-switch transforms annotated
 * separately from workload transforms.
 *
 * Build & run:   ./build/he_pipeline
 */

#include <cmath>
#include <complex>
#include <cstdio>
#include <memory>
#include <thread>

#include "rlwe/bfv.hh"
#include "rlwe/ckks.hh"
#include "rpu/device.hh"
#include "rpu/runner.hh"

using namespace rpu;

namespace {

/** CKKS stage: weighted sum of two encrypted feature vectors. */
int
ckksDotProductStage(const std::shared_ptr<RpuDevice> &device)
{
    CkksParams params;
    params.n = 4096;
    params.towers = 3;
    params.towerBits = 45;
    params.scale = 1099511627776.0; // 2^40
    CkksContext ctx(params);
    ctx.attachDevice(device);
    const CkksSecretKey sk = ctx.keygen();
    std::printf("\nCKKS scheme: n=%llu, chain of %zu x %u-bit towers, "
                "scale 2^40, %zu complex slots\n",
                (unsigned long long)params.n, params.towers,
                params.towerBits, ctx.slots());

    // Two encrypted feature vectors and their plaintext weights: the
    // slot-wise dot product acc[j] = w1*x[j] + w2*y[j].
    std::vector<std::complex<double>> x(ctx.slots()), y(ctx.slots());
    for (size_t j = 0; j < ctx.slots(); ++j) {
        x[j] = {std::sin(0.001 * double(j)), 0.25};
        y[j] = {0.5, std::cos(0.002 * double(j))};
    }
    const std::vector<std::complex<double>> w1(ctx.slots(),
                                               {0.75, -0.5});
    const std::vector<std::complex<double>> w2(ctx.slots(),
                                               {-0.25, 1.0});

    // Encode the weights once: their single forward transform happens
    // here, and the ciphertexts are evaluation-domain resident from
    // encryption — so the homomorphic chain below is pure pointwise
    // launches plus the rescale's dropped-tower inverse transforms.
    const CkksPlaintext w1p = ctx.encodePlain(w1);
    const CkksPlaintext w2p = ctx.encodePlain(w2);

    device->resetCounters();
    const CkksCiphertext acc = ctx.rescale(
        ctx.add(ctx.mulPlain(ctx.encrypt(sk, x), w1p),
                ctx.mulPlain(ctx.encrypt(sk, y), w2p)));
    const DeviceStats stats = device->stats();
    std::printf("dot product done: 2 mulPlain + 1 add + 1 rescale -> "
                "scale back to 2^%.1f, %zu towers left\n",
                std::log2(acc.scale), acc.towers());
    std::printf("RPU activity: %s\n", stats.summary().c_str());
    if (stats.forwardTransforms != 0) {
        std::printf("FAIL: eval-resident chain issued a forward NTT "
                    "launch\n");
        return 1;
    }

    const auto slots = ctx.decrypt(sk, acc);
    double worst = 0.0;
    for (size_t j = 0; j < ctx.slots(); ++j) {
        const std::complex<double> want = w1[j] * x[j] + w2[j] * y[j];
        worst = std::max(worst, std::abs(slots[j] - want));
    }
    const bool ok = worst < 9.5367431640625e-07; // 2^-20
    std::printf("decrypted slots vs plaintext arithmetic: max error "
                "%.3g -> %s\n",
                worst, ok ? "PASS" : "FAIL");
    if (!ok)
        return 1;

    // --- ct x ct: slot-wise product of two encrypted vectors ---------
    // The multiply step of a fully encrypted dot product (the final
    // slot-sum needs the rotation keys on the roadmap): tensor the
    // two fresh ciphertexts, gadget-relinearise back to degree 1,
    // rescale the doubled scale away. Every transform the key-switch
    // spends (c2's digit-split inverse, the digits' re-entry
    // forwards) is annotated in the ledger — the multiply itself
    // adds zero workload transforms.
    const RelinKey rk = ctx.makeRelinKey(sk);
    device->resetCounters();
    const CkksCiphertext prod =
        ctx.rescale(ctx.mulCt(ctx.encrypt(sk, x), ctx.encrypt(sk, y), rk));
    const DeviceStats mul_stats = device->stats();
    std::printf("\nct x ct slot product: mulCt (digit base 2^%u, %zu "
                "digits) + rescale -> scale 2^%.1f, %zu towers left\n",
                rk.digitBits, rk.totalDigits(params.towers),
                std::log2(prod.scale), prod.towers());
    std::printf("RPU activity: %s\n", mul_stats.summary().c_str());
    std::printf("  key-switch transforms: %llu of %llu issued "
                "(workload share: %llu)\n",
                (unsigned long long)mul_stats.keySwitchTransforms,
                (unsigned long long)mul_stats.transformsIssued(),
                (unsigned long long)mul_stats.workloadTransforms());

    const auto prod_slots = ctx.decrypt(sk, prod);
    double worst_prod = 0.0;
    for (size_t j = 0; j < ctx.slots(); ++j) {
        const std::complex<double> want = x[j] * y[j];
        worst_prod = std::max(worst_prod, std::abs(prod_slots[j] - want));
    }
    const bool mul_ok = worst_prod < 9.5367431640625e-07; // 2^-20
    std::printf("decrypted products vs plaintext arithmetic: max error "
                "%.3g -> %s\n",
                worst_prod, mul_ok ? "PASS" : "FAIL");
    return mul_ok ? 0 : 1;
}

} // namespace

int
main()
{
    // --- Scheme setup -------------------------------------------------
    RlweParams params;
    params.n = 4096;
    params.towers = 3;
    params.towerBits = 45;
    params.plaintextModulus = 65537;
    params.noiseBound = 4;
    BfvContext ctx(params);
    const SecretKey sk = ctx.keygen();
    std::printf("RLWE scheme: n=%llu, q = chain of %zu x %u-bit NTT "
                "primes (|q| = %zu bits), t=%llu\n",
                (unsigned long long)params.n, params.towers,
                params.towerBits, ctx.basis().qBits(),
                (unsigned long long)params.plaintextModulus);

    // One RPU serves the whole pipeline: the scheme's homomorphic
    // products and the workbench share its kernel and context caches.
    // With more than one host core, independent tower launches
    // overlap across the device's worker pool (results are
    // bit-identical to serial execution either way).
    const auto device = std::make_shared<RpuDevice>();
    const unsigned cores = std::thread::hardware_concurrency();
    device->setParallelism(cores > 1 ? cores : 1);
    ctx.attachDevice(device);
    std::printf("RPU device attached (%s backend, parallelism %u): "
                "ciphertexts are RNS-resident ResiduePoly towers, "
                "born in the evaluation domain\n",
                device->backend().name(), device->parallelism());

    // --- Fig. 1: image -> vector -> two ciphertext polynomials --------
    const unsigned side = 64; // 64x64 = 4096 pixels
    std::vector<uint64_t> image(params.n);
    for (unsigned y = 0; y < side; ++y) {
        for (unsigned x = 0; x < side; ++x) {
            // A deterministic gradient-with-texture test pattern.
            image[y * side + x] = (x * 3 + y * 5 + (x * y) % 7) % 256;
        }
    }
    const Ciphertext ct = ctx.encrypt(sk, image);
    std::printf("\nencrypted %ux%u image -> 2 residue polynomials of "
                "%zu x %llu coefficients (expansion ~%.0fx)\n",
                side, side, ctx.basis().towers(),
                (unsigned long long)params.n,
                2.0 * double(ctx.basis().qBits()) / 8.0);
    std::printf("fresh noise budget: %.1f bits\n",
                ctx.noiseBudgetBits(sk, ct, image));

    // --- Homomorphic brighten + 2x scaling, all Eval-resident ---------
    // The plaintext is encoded once (its only forward transform);
    // after that the whole chain is per-tower adds plus pointwise
    // launches — the device must issue zero forward NTTs.
    std::vector<uint64_t> two(params.n, 0);
    two[0] = 2;
    const BfvPlaintext two_pt = ctx.encodePlain(two);

    std::vector<uint64_t> bright(params.n, 50);
    const Ciphertext bright_ct = ctx.encrypt(sk, bright);

    device->resetCounters();
    const Ciphertext scaled =
        ctx.mulPlain(ctx.add(ct, bright_ct), two_pt);
    const DeviceStats bfv_stats = device->stats();
    std::printf("homomorphic ops done: 1 ciphertext add + 1 plaintext "
                "multiply\n");
    std::printf("RPU activity: %s\n", bfv_stats.summary().c_str());
    std::printf("  (the add is host tower arithmetic; the multiply is "
                "one pointwise launch per\n   component against the "
                "pre-encoded plaintext — the Eval-resident towers "
                "were\n   never transformed, which the elision ledger "
                "records)\n");
    if (bfv_stats.forwardTransforms != 0) {
        std::printf("FAIL: eval-resident BFV chain issued a forward "
                    "NTT launch\n");
        return 1;
    }

    // --- Decrypt & check ----------------------------------------------
    const std::vector<uint64_t> result = ctx.decrypt(sk, scaled);
    size_t errors = 0;
    for (size_t i = 0; i < image.size(); ++i) {
        const uint64_t expected =
            (2 * (image[i] + 50)) % params.plaintextModulus;
        if (result[i] != expected)
            ++errors;
    }
    std::vector<uint64_t> expected_vec(params.n);
    for (size_t i = 0; i < image.size(); ++i)
        expected_vec[i] =
            (2 * (image[i] + 50)) % params.plaintextModulus;
    std::printf("remaining noise budget: %.1f bits\n",
                ctx.noiseBudgetBits(sk, scaled, expected_vec));
    std::printf("decrypted result: %zu / %zu pixels correct -> %s\n",
                image.size() - errors, image.size(),
                errors == 0 ? "PASS" : "FAIL");

    // --- ct x ct: encrypted dot product <image, weights> ---------------
    // Neither operand is public this time. Coefficient packing turns
    // the dot product into one polynomial multiply: with the weights
    // reversed into v'(x) (v'_j = v_{n-1-j}), coefficient n-1 of
    // u(x) * v'(x) is sum_i u_i * v_i — and since i + j = n-1 never
    // exceeds n-1, the negacyclic wrap's sign never touches it. The
    // multiply is the evaluator's shared pipeline: base-extend to
    // the tensor chain, tensor product, BFV's scale-and-round hook,
    // gadget relinearisation — with the key-switch transforms
    // annotated apart from the workload's own.
    const RelinKey rk = ctx.makeRelinKey(sk);
    std::vector<uint64_t> weights(params.n), weights_rev(params.n);
    for (size_t i = 0; i < weights.size(); ++i)
        weights[i] = (i % 7) + 1;
    for (size_t i = 0; i < weights.size(); ++i)
        weights_rev[i] = weights[weights.size() - 1 - i];
    const Ciphertext w_ct = ctx.encrypt(sk, weights_rev);

    device->resetCounters();
    const Ciphertext dot_ct = ctx.mulCt(ct, w_ct, rk);
    const DeviceStats mul_stats = device->stats();
    std::printf("\nct x ct dot product: 1 mulCt (digit base 2^%u, %zu "
                "digits over %zu towers)\n",
                rk.digitBits, rk.totalDigits(ctx.basis().towers()),
                ctx.basis().towers());
    std::printf("RPU activity: %s\n", mul_stats.summary().c_str());
    std::printf("  key-switch transforms: %llu of %llu issued "
                "(workload share %llu: the base\n   extension's aux-"
                "tower entries and the scale-and-round's chain "
                "re-entry)\n",
                (unsigned long long)mul_stats.keySwitchTransforms,
                (unsigned long long)mul_stats.transformsIssued(),
                (unsigned long long)mul_stats.workloadTransforms());

    uint64_t dot = 0;
    for (size_t i = 0; i < image.size(); ++i)
        dot = (dot + image[i] * weights[i]) % params.plaintextModulus;
    const std::vector<uint64_t> dot_dec = ctx.decrypt(sk, dot_ct);
    const bool dot_ok = dot_dec[params.n - 1] == dot;
    std::printf("decrypted coefficient n-1 = %llu, plaintext <image, "
                "weights> mod t = %llu -> %s\n",
                (unsigned long long)dot_dec[params.n - 1],
                (unsigned long long)dot, dot_ok ? "PASS" : "FAIL");
    if (!dot_ok)
        return 1;

    // --- What would this cost on silicon? ------------------------------
    // Cycle-model the two kernels the domain-resident pipeline
    // cares about: the batched all-towers NTT it pays at domain
    // boundaries and the batched pointwise product that is the whole
    // multiply once operands are evaluation-resident. Their runtime
    // ratio is the paper's motivation in one line.
    const std::vector<u128> tower_moduli = ctx.basis().primes();
    const size_t towers = tower_moduli.size();
    RpuConfig cfg;
    const KernelImage &bntt = device->kernel(
        KernelKind::BatchedForwardNtt, params.n, tower_moduli);
    const KernelMetrics m_ntt = evaluateProgram(
        bntt.program, bntt.vdmBytesRequired, cfg);
    const KernelImage &bpw = device->kernel(
        KernelKind::PointwiseMulBatched, params.n, tower_moduli);
    const KernelMetrics m_pw = evaluateProgram(
        bpw.program, bpw.vdmBytesRequired, cfg);
    std::printf("\non the (128,128) RPU, per batched %zu-tower "
                "launch:\n", towers);
    std::printf("  NTT pass:  %8llu cycles = %6.2f us @ %.2f GHz\n",
                (unsigned long long)m_ntt.cycle.cycles,
                m_ntt.runtimeUs, m_ntt.freqGhz);
    std::printf("  pointwise: %8llu cycles = %6.2f us (%.1f%% of an "
                "NTT pass)\n",
                (unsigned long long)m_pw.cycle.cycles, m_pw.runtimeUs,
                100.0 * m_pw.runtimeUs / m_ntt.runtimeUs);

    // The per-worker cycle ledger folds exactly these costs into
    // DeviceStats at launch time: per-lane totals plus the busiest
    // lane's makespan — the modelled wall-clock of a multi-RPU (or
    // multi-lane-group) system running this batch.
    std::printf("pipeline cycle ledger: total=%llu cycles, makespan="
                "%llu cycles (%.2fx concurrency) — per lane [",
                (unsigned long long)bfv_stats.cycleTotal(),
                (unsigned long long)bfv_stats.makespanCycles(),
                bfv_stats.makespanCycles() == 0
                    ? 0.0
                    : double(bfv_stats.cycleTotal()) /
                          double(bfv_stats.makespanCycles()));
    for (size_t i = 0; i < bfv_stats.perWorkerCycles.size(); ++i)
        std::printf("%s%llu", i == 0 ? "" : " ",
                    (unsigned long long)bfv_stats.perWorkerCycles[i]);
    std::printf("]\n");

    // --- CKKS: approximate arithmetic on the same device ---------------
    // The second scheme the RPU serves: complex slots instead of
    // exact mod-t coefficients, sharing this device's kernel and
    // context caches with the BFV stage above.
    const int ckks_rc = ckksDotProductStage(device);
    return errors == 0 && ckks_rc == 0 ? 0 : 1;
}
