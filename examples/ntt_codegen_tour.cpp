/**
 * @file
 * A tour of the NTT code generator (the paper's SPIRAL backend,
 * section V): generate a 4K-point kernel, inspect the program, verify
 * it bit-exactly against the reference transform, and compare the
 * optimized and unoptimized flavours on the cycle simulator (Fig. 6
 * in miniature).
 *
 * Build & run:   ./build/examples/ntt_codegen_tour [ring_size]
 */

#include <cstdio>
#include <cstdlib>

#include "rpu/runner.hh"

using namespace rpu;

int
main(int argc, char **argv)
{
    const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                : 4096;
    std::printf("generating forward/inverse NTT kernels for n=%llu...\n",
                (unsigned long long)n);
    NttRunner runner(n, 124);

    RpuConfig cfg; // the paper's (128, 128) flagship
    NttCodegenOptions opt;
    opt.scheduleConfig = cfg;
    const NttKernel fwd = runner.makeKernel(opt);

    const auto mix = fwd.program.mix();
    std::printf("\nforward kernel '%s':\n", fwd.program.name().c_str());
    std::printf("  %llu instructions: %llu loads, %llu stores, %llu "
                "broadcasts,\n  %llu compute (%llu fused butterflies), "
                "%llu shuffles\n",
                (unsigned long long)mix.total(),
                (unsigned long long)mix.loads,
                (unsigned long long)mix.stores,
                (unsigned long long)mix.broadcasts,
                (unsigned long long)mix.compute,
                (unsigned long long)mix.butterflies,
                (unsigned long long)mix.shuffles);
    std::printf("  scratchpads: %zu twiddle-plan words, %zu SDM "
                "scalars, %zu KiB VDM\n",
                fwd.twPlanImage.size(), fwd.sdmImage.size(),
                fwd.vdmBytesRequired >> 10);
    std::printf("\nfirst 16 instructions:\n");
    for (size_t i = 0; i < 16 && i < fwd.program.size(); ++i)
        std::printf("  %s\n", fwd.program[i].toString().c_str());

    std::printf("\nverifying against the reference NTT... %s\n",
                runner.verify(fwd) ? "bit-exact match" : "MISMATCH");

    // Round trip through the inverse kernel.
    NttCodegenOptions inv_opt;
    inv_opt.inverse = true;
    inv_opt.scheduleConfig = cfg;
    const NttKernel inv = runner.makeKernel(inv_opt);
    Rng rng(1);
    const auto input = randomPoly(runner.modulus(), n, rng);
    const auto round =
        runner.execute(inv, runner.execute(fwd, input));
    std::printf("iNTT(NTT(x)) == x: %s\n",
                round == input ? "yes" : "NO");

    // Fig. 6 in miniature: the cost of ignoring the microarchitecture.
    NttCodegenOptions naive;
    naive.optimized = false;
    const KernelMetrics mo = runner.evaluate(fwd, cfg);
    const KernelMetrics mn =
        runner.evaluate(runner.makeKernel(naive), cfg);
    std::printf("\non the (128,128) RPU @ %.2f GHz:\n", mo.freqGhz);
    std::printf("  optimized:   %8llu cycles  %7.2f us\n",
                (unsigned long long)mo.cycle.cycles, mo.runtimeUs);
    std::printf("  unoptimized: %8llu cycles  %7.2f us  (%.2fx "
                "slower)\n",
                (unsigned long long)mn.cycle.cycles, mn.runtimeUs,
                mn.runtimeUs / mo.runtimeUs);
    std::printf("  pipeline utilisation (optimized): LS %.0f%%, "
                "compute %.0f%%, shuffle %.0f%%\n",
                100.0 * mo.cycle.ls.utilisation(mo.cycle.cycles),
                100.0 * mo.cycle.compute.utilisation(mo.cycle.cycles),
                100.0 * mo.cycle.shuffle.utilisation(mo.cycle.cycles));
    return 0;
}
