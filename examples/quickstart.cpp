/**
 * @file
 * Quickstart: assemble a tiny B512 kernel by hand, run it on the
 * functional simulator, and time it on the cycle simulator.
 *
 * The kernel computes one Cooley-Tukey butterfly layer over two
 * 512-element vectors held in the vector data memory: exactly the
 * primitive the RPU accelerates.
 *
 * Build & run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "model/frequency.hh"
#include "modmath/primegen.hh"
#include "sim/cycle/simulator.hh"
#include "sim/functional/executor.hh"

using namespace rpu;

int
main()
{
    // 1. A ring: a 124-bit NTT-friendly prime for dimension 1024.
    const u128 q = nttPrime(124, 1024);
    const Modulus mod(q);
    const u128 psi = primitiveRoot2n(q, 1024);
    std::printf("ring: n=1024, q has %u bits\n", mod.bits());

    // 2. Write a kernel in B512 assembly. SDM[0] holds the modulus;
    //    a0 points at the data, a3 at the scalar memory.
    const Program kernel = assemble(
        "mload m1, 0            ; q from SDM[0]\n"
        "aload a0, 1            ; data base from SDM[1]\n"
        "aload a3, 2            ; SDM base for broadcasts\n"
        "vload v1, a0, 0, contig   ; x[0..511]\n"
        "vload v2, a0, 512, contig ; x[512..1023]\n"
        "vbcast v3, a3, 3       ; twiddle psi (SDM[3]) to all lanes\n"
        "vbfly v4, v5, v1, v2, v3, m1 ; (v4,v5) = (x+w*y, x-w*y)\n"
        "vstore v4, a0, 0, contig\n"
        "vstore v5, a0, 512, contig\n",
        "quickstart");
    std::printf("\nkernel (%zu instructions):\n%s", kernel.size(),
                kernel.disassemble().c_str());

    // 3. Stage data ("launch code") and execute functionally.
    ArchState state;
    state.writeSdm(0, q);
    state.writeSdm(1, 0);   // data base
    state.writeSdm(2, 0);   // SDM base
    state.writeSdm(3, psi); // the twiddle
    for (unsigned i = 0; i < 1024; ++i)
        state.writeVdm(i, u128(i));

    FunctionalSimulator sim(state);
    sim.run(kernel);

    // Check one lane by hand: lane 7 pairs x[7] with x[519].
    const u128 t = mod.mul(psi, 519);
    std::printf("\nlane 7: expected (%llu, ...), got (%llu, %llu)\n",
                (unsigned long long)uint64_t(mod.add(7, t)),
                (unsigned long long)uint64_t(state.readVdm(7)),
                (unsigned long long)uint64_t(state.readVdm(519)));

    // 4. Time it on a (128, 128) RPU.
    RpuConfig cfg;
    const CycleStats stats = simulateCycles(kernel, cfg);
    const double freq = rpuFrequencyGhz(cfg);
    std::printf("\ncycle simulation on %s @ %.2f GHz:\n%s",
                cfg.name().c_str(), freq, stats.report().c_str());
    std::printf("runtime: %.1f ns\n", stats.runtimeUs(freq) * 1e3);
    return 0;
}
