/**
 * @file
 * CKKS pipeline throughput on the device: serial vs worker pool.
 *
 * One "op" is the scheme's hot path — a slot-wise plaintext multiply
 * (both ciphertext components through one mulTowersBatchAsync
 * dispatch) followed by a rescale (per-tower forward NTT + pointwise
 * scaling + inverse NTT launches) — measured in ops/s across modulus
 * chain lengths and worker counts. The sibling launch_throughput
 * bench measures raw launchAll dispatch; this one measures what that
 * concurrency buys an actual second-scheme workload end to end.
 *
 * Results are workload-true (every launch runs the full functional
 * simulation of a generated B512 program) but host-dependent: the
 * speedup ceiling is min(workers, 2 * towers, host cores). Every
 * parallel ciphertext is asserted bit-identical to the serial one
 * before any number is reported.
 */

#include <chrono>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "rlwe/ckks.hh"
#include "rpu/device.hh"

namespace rpu {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Workload
{
    std::unique_ptr<CkksContext> ctx;
    CkksCiphertext ct;
    std::vector<std::complex<double>> weights;
    CkksCiphertext expected; ///< serial golden mulPlain + rescale
};

Workload
makeWorkload(const std::shared_ptr<RpuDevice> &device, uint64_t n,
             size_t towers)
{
    CkksParams params;
    params.n = n;
    params.towers = towers;
    params.towerBits = 45;
    params.scale = 1099511627776.0; // 2^40

    Workload w;
    w.ctx = std::make_unique<CkksContext>(params, towers);
    w.ctx->attachDevice(device);
    const CkksSecretKey sk = w.ctx->keygen();

    Rng rng(uint64_t(towers) * 1031 + 7);
    std::vector<std::complex<double>> values(w.ctx->slots());
    w.weights.resize(w.ctx->slots());
    for (size_t j = 0; j < w.ctx->slots(); ++j) {
        values[j] = {2.0 * rng.nextDouble() - 1.0,
                     2.0 * rng.nextDouble() - 1.0};
        w.weights[j] = {2.0 * rng.nextDouble() - 1.0,
                        2.0 * rng.nextDouble() - 1.0};
    }
    w.ct = w.ctx->encrypt(sk, values);
    w.expected = w.ctx->rescale(w.ctx->mulPlain(w.ct, w.weights));
    return w;
}

bool
identical(const CkksCiphertext &a, const CkksCiphertext &b)
{
    return a.c0 == b.c0 && a.c1 == b.c1;
}

/** Ops/second of mulPlain + rescale at the current parallelism. */
double
throughput(const Workload &w, int reps)
{
    // Warm-up run doubles as the bit-identity check.
    if (!identical(w.ctx->rescale(w.ctx->mulPlain(w.ct, w.weights)),
                   w.expected)) {
        std::fprintf(stderr,
                     "FAIL: parallel CKKS pipeline diverges from "
                     "serial\n");
        std::exit(1);
    }
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r)
        w.ctx->rescale(w.ctx->mulPlain(w.ct, w.weights));
    return reps / secondsSince(t0);
}

} // namespace
} // namespace rpu

int
main()
{
    using namespace rpu;

    const uint64_t n = 1024;
    const int reps = 3;
    const std::vector<size_t> tower_counts = {2, 3, 4};
    const std::vector<unsigned> worker_counts = {1, 2, 4, 8};

    bench::header("CKKS mulPlain+rescale throughput: serial vs pool");
    std::printf("n = %llu, 45-bit towers, scale 2^40, %d reps/cell, "
                "host cores = %u\n",
                (unsigned long long)n, reps,
                std::thread::hardware_concurrency());
    std::printf("cells: ops/s (speedup vs 1 worker)\n\n");

    std::printf("%8s", "towers");
    for (unsigned wkr : worker_counts)
        std::printf("  %18u", wkr);
    std::printf("\n");
    bench::rule('-', 8 + 20 * int(worker_counts.size()));

    const auto device = std::make_shared<RpuDevice>();
    for (size_t towers : tower_counts) {
        const Workload w = makeWorkload(device, n, towers);
        std::printf("%8zu", towers);
        double serial = 0.0;
        for (unsigned wkr : worker_counts) {
            device->setParallelism(wkr);
            const double ops = throughput(w, reps);
            if (wkr == 1)
                serial = ops;
            std::printf("  %10.2f (%4.2fx)", ops,
                        serial > 0 ? ops / serial : 0.0);
        }
        device->setParallelism(1);
        std::printf("\n");
    }

    std::printf("\nPASS: every parallel CKKS pipeline bit-identical "
                "to serial\n");
    return 0;
}
