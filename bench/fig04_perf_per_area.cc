/**
 * @file
 * Fig. 4 reproduction: performance per area of the 64K NTT across RPU
 * configurations. The paper finds (128,128) most efficient with
 * (64,64) second.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace rpu;

int
main()
{
    bench::header("Fig. 4: performance per area (64K NTT)");
    NttRunner runner(65536, 124);
    const auto points = bench::sweep64k(runner);

    // Heatmap-style table: rows = HPLEs, columns = banks. Values are
    // 1 / (runtime_us * mm^2), scaled by 1e6 for readability (the
    // paper's axis is arbitrary-scaled as well).
    std::printf("  P/A x 1e6 %10s", "");
    for (unsigned b : bench::bankSweep())
        std::printf("%10u", b);
    std::printf("   (banks)\n");
    bench::rule();

    const bench::SweepPoint *best = nullptr;
    const bench::SweepPoint *second = nullptr;
    for (const auto &p : points) {
        if (!best || p.metrics.perfPerArea() > best->metrics.perfPerArea()) {
            second = best;
            best = &p;
        } else if (!second || p.metrics.perfPerArea() >
                                  second->metrics.perfPerArea()) {
            second = &p;
        }
    }

    size_t idx = 0;
    for (unsigned h : bench::hpleSweep()) {
        std::printf("  HPLEs %-4u %10s", h, "");
        for (size_t bi = 0; bi < bench::bankSweep().size(); ++bi) {
            const auto &p = points[idx++];
            std::printf("%10.0f", p.metrics.perfPerArea() * 1e6);
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("  most efficient: (%u, %u); second: (%u, %u)\n",
                best->hples, best->banks, second->hples, second->banks);
    std::printf("  paper: (128, 128) most efficient, (64, 64) second\n");
    return best->hples == 128 && best->banks == 128 ? 0 : 1;
}
