/**
 * @file
 * Multi-RPU sharding: capacity-planning sweep over device count and
 * scheduler policy.
 *
 * The serving question behind an RpuTopology is "how many RPUs does
 * this traffic need?" — this harness answers it on the cycle model,
 * with the wall clock along for context. Four phases, each PASS-gated:
 *
 *  1. Bit-identity on a device set. A fixed mixed mulPlain/mulCt
 *     request set across four tenants runs through a 2-device-topology
 *     server with coalescing on; every response must equal the
 *     per-tenant *serial* single-context reference
 *     (Session::runSerial) exactly, while the topology ledger proves
 *     both devices actually executed work. "Generate once, launch
 *     anywhere" is asserted on the same run: after prewarm, device 1
 *     records zero kernel-cache misses.
 *
 *  2. Contention observability. The per-device HBM-contention ledger
 *     must be a real refinement of the PR 5 per-worker cycle ledger:
 *     on a serial device the busy makespan equals the plain compute
 *     makespan exactly (staging fully overlapped at one lane), and on
 *     a pooled device running concurrent lanes it strictly exceeds it
 *     (each extra occupant re-exposes staging traffic).
 *
 *  3. Policy-ablation capacity replay. The same fixed mulPlain
 *     request set replays against 1/2/4/8-device topologies through a
 *     paused server (deterministic chunk composition, serial devices,
 *     one dispatcher), once per scheduler policy tier — greedy,
 *     +lookahead, +split, +steal (cumulative; see SchedulerPolicy) —
 *     and the topology-wide makespan window prices each
 *     configuration: modelled sustained throughput = requests /
 *     makespan seconds at the 64-bank design clock. Gates: results
 *     bit-identical to runSerial in every cell, the summed busy total
 *     conserved across every device count *and* policy (placement
 *     only moves launches, never changes them), 1→2-device scaling
 *     >= 1.6x per tier, and — on the full request budget — the
 *     all-policies tier reaching >= 7.0x at 8 devices (the greedy
 *     baseline's chunk granularity caps it at 6.00x; chunk splitting
 *     is what lifts the ceiling).
 *
 *  4. Open-loop sweep vs device count. The Poisson open-loop
 *     generator (shared with serve_throughput via bench_util.hh)
 *     offers a fixed arrival rate calibrated off the serial path to
 *     every device count and reports sustained ops/s and p50/p99/p999
 *     total latency, with responses spot-checked against the serial
 *     reference. Wall-clock rows are informational (machine- and
 *     sanitizer-dependent); the scaling gate lives in phase 3 where
 *     the cycle model makes it deterministic.
 *
 * RPU_SHARD_REQUESTS scales the replay/open-loop request counts down
 * for sanitizer jobs (the 8-device >= 7.0x gate needs the full
 * 96-request budget and is skipped below it). RPU_SHARD_POLICY
 * restricts the run to one tier (greedy|lookahead|split|steal) — CI
 * uses this to keep the greedy baseline as a regression anchor while
 * exercising every policy end to end. The binary exits 1 on any
 * divergence; CI treats that as a job failure.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "model/frequency.hh"
#include "rpu/device.hh"
#include "rpu/topology.hh"
#include "serve/server.hh"

namespace rpu {
namespace {

using bench::fail;
using bench::serveTenantParams;
using bench::slotValues;

using serve::HeServer;
using serve::RequestOp;
using serve::SchedulerPolicy;
using serve::ServeConfig;
using serve::ServeResponse;
using serve::Session;
using serve::SubmitStatus;
using serve::TenantConfig;

using Cplx = std::complex<double>;
using Pending = bench::PendingServe;

constexpr size_t kTenants = 4;
const std::vector<size_t> kDeviceCounts = {1, 2, 4, 8};

/** The cumulative ablation tiers phase 3 sweeps. */
struct PolicyTier
{
    const char *name;
    SchedulerPolicy policy;
};

const std::vector<PolicyTier> &
policyTiers()
{
    static const std::vector<PolicyTier> tiers = {
        {"greedy", SchedulerPolicy::greedy()},
        {"+lookahead", {true, false, false}},
        {"+split", {true, true, false}},
        {"+steal", SchedulerPolicy::all()},
    };
    return tiers;
}

/** RPU_SHARD_POLICY selects one tier; unset/"all" runs all four. */
std::vector<PolicyTier>
selectedTiers()
{
    const char *env = std::getenv("RPU_SHARD_POLICY");
    if (!env || std::strcmp(env, "all") == 0)
        return policyTiers();
    for (const PolicyTier &t : policyTiers()) {
        // Match with or without the '+' prefix.
        if (std::strcmp(env, t.name) == 0 ||
            (t.name[0] == '+' && std::strcmp(env, t.name + 1) == 0))
            return {t};
    }
    fail("RPU_SHARD_POLICY must be greedy|lookahead|split|steal|all");
}

std::unique_ptr<HeServer>
makeServer(const std::shared_ptr<RpuTopology> &topology,
           const SchedulerPolicy &policy, bool paused,
           size_t queueCapacity)
{
    ServeConfig cfg;
    cfg.queueCapacity = queueCapacity;
    cfg.maxBatch = 16;
    cfg.maxPerTenant = 4;
    cfg.maxCoalesce = 8;
    cfg.coalesce = true;
    cfg.policy = policy;
    cfg.startPaused = paused;
    auto server = std::make_unique<HeServer>(cfg, topology);
    for (uint64_t id = 1; id <= kTenants; ++id)
        server->addTenant({id, serveTenantParams(), 30});
    return server;
}

size_t
requestBudget(size_t dflt)
{
    if (const char *env = std::getenv("RPU_SHARD_REQUESTS"))
        return std::max(32ul, std::strtoul(env, nullptr, 10));
    return dflt;
}

/** Modelled ops/s of a replay window: requests over the topology
 *  makespan priced at the 64-bank design clock. */
double
modelledOpsPerSec(size_t requests, uint64_t makespan)
{
    if (makespan == 0)
        return 0.0;
    const double hz = rpuFrequencyGhz(64) * 1e9;
    return double(requests) / (double(makespan) / hz);
}

// ----------------------------------------------------------------------
// Phase 1: bit-identity + shared kernel cache on a 2-device topology
// ----------------------------------------------------------------------

void
phaseBitIdentity(const SchedulerPolicy &policy)
{
    // Two passes of the same mixed set shapes (fresh seqs): pass 1
    // may still generate kernels prewarm doesn't predict (the mulCt
    // relinearisation shapes), on whichever device a chunk landed.
    // Pass 2 must then run entirely out of the shared cache on every
    // device — a hit even when the generating device differs, which
    // is exactly "generate once, launch anywhere". Holding under the
    // split policy too matters: split plans route single stage groups
    // to devices that never saw the whole chunk.
    bench::header("phase 1: device-set serving vs serial reference");
    auto topology = std::make_shared<RpuTopology>(2);
    const auto runPass = [&](HeServer &server, size_t passIdx) {
        std::vector<Pending> pending;
        for (size_t r = 0; r < 6; ++r) {
            for (uint64_t t = 1; t <= kTenants; ++t) {
                Pending p;
                p.tenant = t;
                p.seq = 6 * passIdx + r;
                p.op = (r % 3 == 2) ? RequestOp::MulCtRescale
                                    : RequestOp::MulPlainRescale;
                p.a = slotValues(16, 100 * t + p.seq);
                p.b = slotValues(16, 900 * t + p.seq);
                auto sub = server.submit(t, p.op, p.a, p.b);
                if (sub.status != SubmitStatus::Accepted)
                    fail("bit-identity submit rejected (queue sized "
                         "wrong)");
                p.response = std::move(sub.response);
                pending.push_back(std::move(p));
            }
        }
        server.start(); // no-op after pass 1; futures gate the drain
        for (auto &p : pending) {
            ServeResponse resp = p.response.get();
            const Session *sess = server.tenant(p.tenant);
            if (resp.values != sess->runSerial(p.op, p.a, p.b, p.seq))
                fail("device-set response diverges from serial "
                     "reference");
        }
        return pending.size();
    };

    auto server = makeServer(topology, policy, true, 64);
    server->prewarm();
    const size_t served = runPass(*server, 0);

    const RpuTopology::Snapshot warm = topology->snapshot();
    runPass(*server, 1);
    server->shutdown();
    const RpuTopology::Snapshot window = topology->since(warm);

    // Both devices must have executed real work — otherwise the
    // "multi-device" identity statement is vacuous — and the warm
    // pass must be all cache hits on every device: each kernel was
    // generated once, somewhere in the topology, in pass 1.
    for (size_t d = 0; d < window.size(); ++d) {
        if (window[d].launches == 0)
            fail("a topology device executed no launches");
        std::printf("  device %zu: %5llu launches, %9llu modelled "
                    "cycles, warm-pass kernel hits %llu misses %llu\n",
                    d, (unsigned long long)window[d].launches,
                    (unsigned long long)window[d].cycleTotal(),
                    (unsigned long long)window[d].kernelHits,
                    (unsigned long long)window[d].kernelMisses);
        if (window[d].kernelMisses != 0)
            fail("warm pass missed the shared kernel cache");
        if (window[d].kernelHits == 0)
            fail("warm pass never consulted the kernel cache");
    }
    std::printf("  2 x %zu requests bit-identical to runSerial across "
                "2 devices; generate once, launch anywhere holds\n",
                served);
}

// ----------------------------------------------------------------------
// Phase 2: the contention term is observable and only when contended
// ----------------------------------------------------------------------

void
phaseContention()
{
    bench::header("phase 2: HBM contention ledger vs PR 5 cycle ledger");
    const uint64_t n = 1024;
    const size_t items = 8;

    // One batched transform fan-out: 8 sets x 3 towers. On a serial
    // device that's 8 batched launches with a single occupant each;
    // on a pooled device it fans into 24 single-ring launches whose
    // structural occupancy is min(workers, 24) lanes.
    const auto run = [&](unsigned workers) {
        auto device = std::make_shared<RpuDevice>();
        if (workers > 1)
            device->setParallelism(workers);
        const CkksContext ctx(serveTenantParams(), 7);
        const std::vector<u128> moduli = ctx.basis().primes();
        std::vector<std::vector<std::vector<u128>>> xs(items);
        for (size_t i = 0; i < items; ++i) {
            for (size_t t = 0; t < moduli.size(); ++t) {
                std::vector<u128> region(n);
                Rng rng(1000 * i + t);
                for (auto &x : region)
                    x = rng.below64(uint64_t(moduli[t]));
                xs[i].push_back(std::move(region));
            }
        }
        auto pending = device->transformTowersBatchAsync(
            n, moduli, std::move(xs), false);
        for (auto &p : pending)
            (void)RpuDevice::collectTowers(std::move(p));
        return device->stats();
    };

    const DeviceStats serial = run(1);
    if (serial.busyMakespanCycles() != serial.makespanCycles())
        fail("uncontended busy makespan diverges from the cycle ledger");
    if (serial.contendedLaunches != 0)
        fail("serial device recorded contended launches");

    const DeviceStats pooled = run(4);
    if (pooled.contendedLaunches == 0)
        fail("pooled batched launches never contended");
    if (pooled.busyMakespanCycles() <= pooled.makespanCycles())
        fail("contended busy makespan does not exceed the uncontended "
             "cycle-ledger makespan");

    std::printf("  serial: makespan %llu == busy makespan %llu "
                "(staging %llu cyc fully overlapped)\n",
                (unsigned long long)serial.makespanCycles(),
                (unsigned long long)serial.busyMakespanCycles(),
                (unsigned long long)serial.stagingCycleTotal());
    std::printf("  pooled: makespan %llu <  busy makespan %llu "
                "(%llu contended launches, peak %llu lanes)\n",
                (unsigned long long)pooled.makespanCycles(),
                (unsigned long long)pooled.busyMakespanCycles(),
                (unsigned long long)pooled.contendedLaunches,
                (unsigned long long)pooled.maxOccupiedLanes);
}

// ----------------------------------------------------------------------
// Phase 3: policy-ablation modelled capacity replay vs device count
// ----------------------------------------------------------------------

struct ReplayRow
{
    size_t devices = 0;
    uint64_t makespan = 0;  ///< topology busy makespan, cycles
    uint64_t busyTotal = 0; ///< summed busy cycles (work conserved)
    double modelled = 0;    ///< modelled sustained ops/s
    uint64_t split = 0;     ///< chunks whose stages spread devices
    uint64_t stolen = 0;    ///< chunks re-claimed by idle dispatchers
};

ReplayRow
runReplay(const SchedulerPolicy &policy, size_t deviceCount,
          size_t requests)
{
    auto topology = std::make_shared<RpuTopology>(deviceCount);
    auto server = makeServer(topology, policy, true, requests);
    server->prewarm();

    std::vector<Pending> pending;
    pending.reserve(requests);
    std::vector<uint64_t> seqs(kTenants, 0);
    for (size_t i = 0; i < requests; ++i) {
        const uint64_t tenant = 1 + i % kTenants;
        Pending p;
        p.tenant = tenant;
        p.seq = seqs[tenant - 1]++;
        p.op = RequestOp::MulPlainRescale;
        p.a = slotValues(16, 40 * tenant + p.seq);
        p.b = slotValues(16, 7000 + p.seq);
        auto sub = server->submit(tenant, p.op, p.a, p.b);
        if (sub.status != SubmitStatus::Accepted)
            fail("replay submit rejected (queue sized wrong)");
        p.response = std::move(sub.response);
        pending.push_back(std::move(p));
    }

    const RpuTopology::Snapshot before = topology->snapshot();
    server->shutdown(); // the drain is the replay
    const RpuTopology::Snapshot window = topology->since(before);

    for (auto &p : pending) {
        ServeResponse resp = p.response.get();
        const Session *sess = server->tenant(p.tenant);
        if (resp.values != sess->runSerial(p.op, p.a, p.b, p.seq))
            fail("replay response diverges from serial reference");
    }

    ReplayRow row;
    row.devices = deviceCount;
    row.makespan = RpuTopology::makespanCycles(window);
    row.busyTotal = RpuTopology::aggregate(window).busyCycleTotal();
    row.modelled = modelledOpsPerSec(requests, row.makespan);
    row.split = server->stats().splitChunks;
    row.stolen = server->stats().stolenChunks;
    return row;
}

void
phaseModelledCapacity(const std::vector<PolicyTier> &tiers,
                      size_t requests)
{
    bench::header(
        "phase 3: policy-ablation capacity replay (cycle model)");
    std::printf("  %zu mulPlain requests, %zu tenants, serial devices, "
                "one dispatcher\n\n",
                requests, kTenants);
    std::printf("  %-11s %8s %14s %14s %14s %7s\n", "policy", "devices",
                "makespan cyc", "busy total", "modelled op/s", "scale");
    bench::rule('-', 76);

    // Busy-total conservation is the correctness anchor: every policy
    // may only move launches between devices, never change what is
    // launched, so the summed busy cycles must match the 1-device
    // greedy figure in every cell.
    uint64_t busy_anchor = 0;
    for (const PolicyTier &tier : tiers) {
        std::vector<ReplayRow> rows;
        for (size_t d : kDeviceCounts) {
            rows.push_back(runReplay(tier.policy, d, requests));
            const ReplayRow &r = rows.back();
            std::printf("  %-11s %8zu %14llu %14llu %14.1f %6.2fx\n",
                        tier.name, r.devices,
                        (unsigned long long)r.makespan,
                        (unsigned long long)r.busyTotal, r.modelled,
                        r.modelled / rows.front().modelled);
            if (busy_anchor == 0)
                busy_anchor = r.busyTotal;
            if (r.busyTotal != busy_anchor)
                fail("busy total not conserved across the ablation "
                     "(a policy changed the work, not just its place)");
        }

        const double scale12 = rows[1].modelled / rows[0].modelled;
        if (!(scale12 >= 1.6))
            fail("modelled throughput scales < 1.6x from 1 to 2 "
                 "devices");
        const ReplayRow &r8 = rows.back();
        const double scale8 = r8.modelled / rows.front().modelled;
        std::printf("  %-11s 1->2: %.2fx (gate >= 1.60x); 8-dev: "
                    "%.2fx; split %llu, stolen %llu chunks\n",
                    tier.name, scale12, scale8,
                    (unsigned long long)r8.split,
                    (unsigned long long)r8.stolen);
        // The headline gate: with every policy on, chunk splitting
        // must lift 8-device scaling past the 6.00x chunk-granularity
        // ceiling. Only meaningful on the full request budget — the
        // reduced sanitizer run has too few chunks per device for the
        // balance to converge.
        if (tier.policy.split && tier.policy.steal) {
            if (requests >= 96 && !(scale8 >= 7.0))
                fail("all-policy 8-device modelled scaling < 7.0x");
            if (requests < 96)
                std::printf("  (8-device >= 7.0x gate skipped below "
                            "the 96-request budget)\n");
        }
    }
}

// ----------------------------------------------------------------------
// Phase 4: open-loop Poisson sweep vs device count (wall clock)
// ----------------------------------------------------------------------

void
phaseOpenLoop(const SchedulerPolicy &policy, size_t requests)
{
    bench::header("phase 4: open-loop Poisson sweep vs device count");
    const double capacity =
        bench::calibrateServeCapacity(std::make_shared<RpuDevice>());
    const double rate = 1.5 * capacity;
    std::printf("  calibrated serial capacity %.1f ops/s; offering "
                "%.1f ops/s (1.5x) to every device count\n\n",
                capacity, rate);

    std::printf("  %8s %10s %10s %9s %9s %10s %10s %10s\n", "devices",
                "offered/s", "sustained", "accepted", "rejected",
                "p50 us", "p99 us", "p999 us");
    bench::rule('-', 84);
    for (size_t d : kDeviceCounts) {
        auto topology = std::make_shared<RpuTopology>(d);
        auto server = makeServer(topology, policy, false, 64);
        server->prewarm();
        bench::OpenLoopRow r =
            bench::runServeOpenLoop(*server, rate, requests, kTenants);
        r.devices = d;
        std::printf("  %8zu %10.1f %10.1f %9zu %9zu %10.0f %10.0f "
                    "%10.0f\n",
                    r.devices, r.offered, r.sustained, r.accepted,
                    r.rejected, r.p50, r.p99, r.p999);
        if (r.accepted == 0)
            fail("open-loop run accepted no requests");
    }
    std::printf("  (wall-clock rows are informational; the scaling "
                "gate is phase 3's cycle model)\n");
}

} // namespace
} // namespace rpu

int
main()
{
    std::printf("Multi-RPU sharding: contention-aware capacity "
                "planning\n%zu tenants, CKKS n=1024, 3 towers, "
                "device counts 1/2/4/8, shared kernel caches\n",
                rpu::kTenants);

    const size_t requests = rpu::requestBudget(96);
    const std::vector<rpu::PolicyTier> tiers = rpu::selectedTiers();
    // Phases 1 and 4 exercise one policy end to end: the selected
    // tier's when RPU_SHARD_POLICY narrows the run, the full stack
    // otherwise.
    const rpu::SchedulerPolicy primary =
        tiers.size() == 1 ? tiers.front().policy
                          : rpu::SchedulerPolicy::all();
    std::printf("scheduler policy tiers: ");
    for (const rpu::PolicyTier &t : tiers)
        std::printf("%s ", t.name);
    std::printf("\n");

    rpu::phaseBitIdentity(primary);
    rpu::phaseContention();
    rpu::phaseModelledCapacity(tiers, requests);
    rpu::phaseOpenLoop(primary, requests);

    std::printf("\nPASS: device-set serving bit-identical to per-tenant "
                "serial execution under every\nscheduler policy, busy "
                "total conserved across the ablation, modelled "
                "throughput\nscales >= 1.6x from 1 to 2 devices, shared "
                "kernel cache hit across devices\n");
    return 0;
}
