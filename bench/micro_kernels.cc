/**
 * @file
 * Microkernel benchmarks (google-benchmark): the arithmetic
 * primitives underneath every figure — 128-bit modular operations,
 * reference and baseline NTTs, twiddle generation, CRT, and the
 * functional/cycle simulators themselves.
 */

#include <benchmark/benchmark.h>

#include "baseline/cpu_ntt64.hh"
#include "modmath/primegen.hh"
#include "poly/polynomial.hh"
#include "rns/crt.hh"
#include "rpu/runner.hh"
#include "sim/cycle/simulator.hh"

namespace rpu {
namespace {

const u128 kPrime128 = nttPrime(124, 65536);

void
BM_ModMul128(benchmark::State &state)
{
    const Modulus mod(kPrime128);
    Rng rng(1);
    u128 a = rng.below128(mod.value());
    const u128 b = rng.below128(mod.value());
    for (auto _ : state) {
        a = mod.mul(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ModMul128);

void
BM_ModMulMontNormal128(benchmark::State &state)
{
    const Modulus mod(kPrime128);
    Rng rng(2);
    const u128 w = mod.toMont(rng.below128(mod.value()));
    u128 a = rng.below128(mod.value());
    for (auto _ : state) {
        a = mod.mulMontNormal(w, a);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ModMulMontNormal128);

void
BM_ModAdd128(benchmark::State &state)
{
    const Modulus mod(kPrime128);
    Rng rng(3);
    u128 a = rng.below128(mod.value());
    const u128 b = rng.below128(mod.value());
    for (auto _ : state) {
        a = mod.add(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ModAdd128);

void
BM_ModMulShoup64(benchmark::State &state)
{
    const Modulus64 mod(uint64_t(nttPrime(60, 65536)));
    Rng rng(4);
    const uint64_t w = rng.below64(mod.value());
    const uint64_t ws = mod.shoupPrecompute(w);
    uint64_t a = rng.below64(mod.value());
    for (auto _ : state) {
        a = mod.mulShoup(w, ws, a);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ModMulShoup64);

void
BM_ReferenceNtt128(benchmark::State &state)
{
    const uint64_t n = state.range(0);
    const Modulus mod(nttPrime(124, n));
    const TwiddleTable tw(mod, n);
    const NttContext ntt(tw);
    Rng rng(5);
    std::vector<u128> x = randomPoly(mod, n, rng);
    for (auto _ : state) {
        ntt.forward(x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetComplexityN(n);
}
BENCHMARK(BM_ReferenceNtt128)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Arg(65536)->Complexity(benchmark::oNLogN);

void
BM_CpuNtt64(benchmark::State &state)
{
    const uint64_t n = state.range(0);
    const uint64_t q = uint64_t(nttPrime(60, n));
    const CpuNtt64 ntt(q, n);
    Rng rng(6);
    std::vector<uint64_t> x(n);
    for (auto &v : x)
        v = rng.below64(q);
    for (auto _ : state) {
        ntt.forward(x);
        benchmark::DoNotOptimize(x.data());
    }
}
BENCHMARK(BM_CpuNtt64)->Arg(1024)->Arg(65536);

void
BM_TwiddleTableBuild(benchmark::State &state)
{
    const uint64_t n = state.range(0);
    const Modulus mod(nttPrime(124, n));
    for (auto _ : state) {
        TwiddleTable tw(mod, n);
        benchmark::DoNotOptimize(tw.psi());
    }
}
BENCHMARK(BM_TwiddleTableBuild)->Arg(1024)->Arg(4096);

void
BM_CrtReconstruct(benchmark::State &state)
{
    const RnsBasis basis = RnsBasis::nttBasis(124, 1024,
                                              state.range(0));
    const CrtContext crt(basis);
    Rng rng(7);
    std::vector<u128> residues(basis.towers());
    for (size_t i = 0; i < residues.size(); ++i)
        residues[i] = rng.below128(basis.prime(i));
    for (auto _ : state) {
        BigUInt v = crt.reconstruct(residues);
        benchmark::DoNotOptimize(v.isZero());
    }
}
BENCHMARK(BM_CrtReconstruct)->Arg(2)->Arg(4)->Arg(8);

void
BM_NttCodegen(benchmark::State &state)
{
    const NttRunner runner(state.range(0), 124);
    for (auto _ : state) {
        const NttKernel k = runner.makeKernel();
        benchmark::DoNotOptimize(k.program.size());
    }
}
BENCHMARK(BM_NttCodegen)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void
BM_FunctionalSim(benchmark::State &state)
{
    const NttRunner runner(state.range(0), 124);
    const NttKernel kernel = runner.makeKernel();
    Rng rng(8);
    const std::vector<u128> input =
        randomPoly(runner.modulus(), runner.n(), rng);
    for (auto _ : state) {
        auto out = runner.execute(kernel, input);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FunctionalSim)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void
BM_CycleSim(benchmark::State &state)
{
    const NttRunner runner(state.range(0), 124);
    const NttKernel kernel = runner.makeKernel();
    const RpuConfig cfg;
    for (auto _ : state) {
        const CycleStats s = simulateCycles(kernel.program, cfg);
        benchmark::DoNotOptimize(s.cycles);
    }
}
BENCHMARK(BM_CycleSim)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace rpu

BENCHMARK_MAIN();
