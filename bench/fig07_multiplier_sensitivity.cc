/**
 * @file
 * Fig. 7 reproduction: (128,128) 64K NTT cycle count as a function of
 * the modular multiplier's pipeline latency and initiation interval.
 * Paper takeaways: insensitive to latency (fully pipelined units),
 * ~1.5x more cycles at high II, and II=2 costs little because the
 * shuffles, not the multipliers, bottleneck the kernel.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/cycle/simulator.hh"

using namespace rpu;

int
main()
{
    bench::header("Fig. 7: multiplier latency/II sensitivity, 64K NTT "
                  "on (128,128)");
    NttRunner runner(65536, 124);
    RpuConfig base;
    NttCodegenOptions opts;
    opts.scheduleConfig = base;
    const NttKernel kernel = runner.makeKernel(opts);

    std::printf("  cycles %9s", "");
    for (unsigned ii = 1; ii <= 7; ++ii)
        std::printf("%9s%u", "II=", ii);
    std::printf("\n");
    bench::rule(' ', 0);
    bench::rule();

    uint64_t base_cycles = 0, ii2_cycles = 0;
    uint64_t lat_min = ~0ull, lat_max = 0;
    for (unsigned lat = 2; lat <= 8; ++lat) {
        std::printf("  lat=%-2u %9s", lat, "");
        for (unsigned ii = 1; ii <= 7; ++ii) {
            RpuConfig cfg = base;
            cfg.mulLatency = lat;
            cfg.mulII = ii;
            const CycleStats s = simulateCycles(kernel.program, cfg);
            std::printf("%10llu", (unsigned long long)s.cycles);
            if (lat == 5 && ii == 1)
                base_cycles = s.cycles;
            if (lat == 5 && ii == 2)
                ii2_cycles = s.cycles;
            if (ii == 1) {
                lat_min = std::min(lat_min, s.cycles);
                lat_max = std::max(lat_max, s.cycles);
            }
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("  latency sweep spread at II=1: %.1f%% (paper: "
                "\"not highly sensitive\")\n",
                100.0 * double(lat_max - lat_min) / double(lat_min));
    std::printf("  II=2 vs II=1 at lat=5: +%.0f%% cycles (paper: "
                "+16%%, shuffles bottleneck)\n",
                100.0 * (double(ii2_cycles) / double(base_cycles) - 1.0));
    return 0;
}
