/**
 * @file
 * Fig. 8 reproduction: (128,128) 64K NTT cycle count sweeping the
 * shuffle-crossbar (SBAR) latency and load/store (VBAR) latency.
 * Paper takeaway: total cycles move only slightly (about 1.7% across
 * the LS-latency range) because the decoupled pipelines hide latency.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/cycle/simulator.hh"

using namespace rpu;

int
main()
{
    bench::header("Fig. 8: crossbar latency sensitivity, 64K NTT on "
                  "(128,128)");
    NttRunner runner(65536, 124);
    RpuConfig base;
    NttCodegenOptions opts;
    opts.scheduleConfig = base;
    const NttKernel kernel = runner.makeKernel(opts);

    std::printf("  cycles %7s", "");
    for (unsigned sh = 4; sh <= 10; ++sh)
        std::printf("%7s%u", "shuf=", sh);
    std::printf("\n");
    bench::rule();

    uint64_t ls_first = 0, ls_last = 0;
    for (unsigned ls = 4; ls <= 10; ++ls) {
        std::printf("  ls=%-2u %8s", ls, "");
        for (unsigned sh = 4; sh <= 10; ++sh) {
            RpuConfig cfg = base;
            cfg.lsLatency = ls;
            cfg.shuffleLatency = sh;
            const CycleStats s = simulateCycles(kernel.program, cfg);
            std::printf("%8llu", (unsigned long long)s.cycles);
            if (sh == 4 && ls == 4)
                ls_first = s.cycles;
            if (sh == 4 && ls == 10)
                ls_last = s.cycles;
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("  LS latency 4 -> 10 at shuffle=4: +%.1f%% cycles "
                "(paper: +1.7%%)\n",
                100.0 * (double(ls_last) / double(ls_first) - 1.0));
    return 0;
}
