/**
 * @file
 * Fig. 10 reproduction: RPU speedup over the CPU for 64-bit and
 * 128-bit NTTs across polynomial degrees.
 *
 * Substitution note (DESIGN.md section 7): the paper measures OpenFHE
 * on a 32-core EPYC 7502; here the baselines are tuned from-scratch
 * NTTs on this machine's cores. Absolute speedups therefore differ;
 * the reproduced shape is (a) speedup grows with ring size and
 * (b) the 128-bit speedup is far larger than the 64-bit one, because
 * the RPU's native 128-bit LAW engines erase the CPU's wide-word
 * penalty.
 */

#include <cstdio>
#include <thread>

#include "baseline/cpu_ntt128.hh"
#include "baseline/cpu_ntt64.hh"
#include "bench/bench_util.hh"
#include "model/comparisons.hh"
#include "modmath/primegen.hh"

using namespace rpu;

int
main()
{
    const unsigned threads = std::thread::hardware_concurrency();
    bench::header("Fig. 10: RPU speedup over CPU (" +
                  std::to_string(threads) + " host threads)");
    std::printf("  %-8s %10s %12s %12s %12s %12s %14s\n", "degree",
                "RPU (us)", "CPU-64b(us)", "CPU-128b(us)", "spd-64b",
                "spd-128b", "paper-128b");
    bench::rule(' ', 0);
    bench::rule();

    double prev_speedup128 = 0;
    bool shape_ok = true;
    for (uint64_t n : {1024ull, 4096ull, 16384ull, 65536ull}) {
        NttRunner runner(n, 124);
        RpuConfig cfg;
        NttCodegenOptions opts;
        opts.scheduleConfig = cfg;
        const KernelMetrics m =
            runner.evaluate(runner.makeKernel(opts), cfg);

        // 64-bit baseline (Harvey/Shoup butterflies).
        const uint64_t q64 = uint64_t(nttPrime(60, n));
        const CpuNtt64 cpu64(q64, n);
        Rng rng(n);
        std::vector<uint64_t> x64(n);
        for (auto &v : x64)
            v = rng.below64(q64);
        const double t64 = medianRuntimeUs(
            7, [&] { cpu64.forward(x64, threads); });

        // 128-bit baseline (Montgomery butterflies).
        const CpuNtt128 cpu128(runner.table());
        std::vector<u128> x128 =
            randomPoly(runner.modulus(), n, rng);
        const double t128 = medianRuntimeUs(
            7, [&] { cpu128.forward(x128, threads); });

        const double s64 = t64 / m.runtimeUs;
        const double s128 = t128 / m.runtimeUs;
        // Growth check with 15% tolerance for host timing noise (the
        // 2-core box saturates near the large sizes, flattening the
        // curve exactly as the paper describes for its own tail).
        shape_ok = shape_ok && s128 > 0.85 * prev_speedup128 &&
                   s128 > 2.0 * s64;
        prev_speedup128 = std::max(prev_speedup128, s128);

        std::printf("  %-8llu %10.2f %12.1f %12.1f %11.0fx %11.0fx "
                    "%13.0fx\n",
                    (unsigned long long)n, m.runtimeUs, t64, t128, s64,
                    s128, paperCpuSpeedup128b(n));
    }
    bench::rule();
    std::printf("  paper: 545x..1485x for 128b data, 77x..205x if the "
                "CPU runs 64b data\n");
    std::printf("  shape check (speedup grows with n; 128b >> 64b): "
                "%s\n", shape_ok ? "PASS" : "FAIL");
    return shape_ok ? 0 : 1;
}
