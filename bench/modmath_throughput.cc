/**
 * @file
 * Host modmath throughput: the vectorised narrow kernels vs the u128
 * scalar reference, for the three hot shapes the SIMD backend covers
 * (negacyclic NTT butterfly passes, Montgomery pointwise products,
 * and Shoup scalar-times-span products).
 *
 * Each shape is timed through its public entry point (NttContext /
 * polyPointwise / polyScale) so the numbers include the narrowing and
 * widening the real callers pay, not just the inner loop. The A/B
 * uses setHostSimdMode(), the same in-process switch the bit-identity
 * tests use; before any timing, both modes are run on the same input
 * and the outputs asserted bit-identical — the binary exits 1 on any
 * divergence or on a speedup below the 1.5x gate, which CI treats as
 * a job failure.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "modmath/primegen.hh"
#include "modmath/simd.hh"
#include "poly/ntt.hh"
#include "poly/polynomial.hh"

namespace rpu {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

void
fail(const char *what)
{
    std::fprintf(stderr, "FAIL: %s\n", what);
    std::exit(1);
}

/** Minimum wall clock per measurement, so ratios are not noise. */
constexpr double kMinSeconds = 0.15;

/** The gate every (shape, n) cell must clear. */
constexpr double kSpeedupGate = 1.5;

struct Shape
{
    uint64_t n;
    Modulus mod;
    TwiddleTable tw;
    NttContext ctx;
    std::vector<u128> a;
    std::vector<u128> b;
    u128 s;

    Shape(uint64_t n_, unsigned bits, Rng &rng)
        : n(n_), mod(nttPrime(bits, n_)), tw(mod, n_), ctx(tw),
          a(randomPoly(mod, n_, rng)), b(randomPoly(mod, n_, rng)),
          s(rng.below128(mod.value()))
    {
    }
};

/**
 * Elements/second for one kernel shape under the current host-SIMD
 * mode. The op callback processes one polynomial's worth (n
 * elements) per call.
 */
template <typename Op>
double
elementsPerSecond(uint64_t n, Op &&op)
{
    op(); // warm-up (page in tables, settle dispatch)
    const auto t0 = Clock::now();
    uint64_t done = 0;
    do {
        for (int r = 0; r < 8; ++r)
            op();
        done += 8;
    } while (secondsSince(t0) < kMinSeconds);
    return double(done) * double(n) / secondsSince(t0);
}

double
measure(const Shape &sh, int shape_kind, simd::HostSimdMode mode)
{
    simd::setHostSimdMode(mode);
    double eps = 0.0;
    switch (shape_kind) {
      case 0: { // forward+inverse transform round trip
        std::vector<u128> x = sh.a;
        eps = elementsPerSecond(2 * sh.n, [&] {
            sh.ctx.forward(x);
            sh.ctx.inverse(x);
        });
        break;
      }
      case 1: // Montgomery pointwise product
        eps = elementsPerSecond(
            sh.n, [&] { (void)polyPointwise(sh.mod, sh.a, sh.b); });
        break;
      case 2: // Shoup scalar-times-span product
        eps = elementsPerSecond(
            sh.n, [&] { (void)polyScale(sh.mod, sh.s, sh.a); });
        break;
    }
    simd::setHostSimdMode(simd::HostSimdMode::Native);
    return eps;
}

/** Run one shape under both modes and demand identical outputs. */
void
checkBitIdentity(const Shape &sh)
{
    simd::setHostSimdMode(simd::HostSimdMode::Scalar);
    std::vector<u128> ntt_s = sh.a;
    sh.ctx.forward(ntt_s);
    std::vector<u128> rt_s = ntt_s;
    sh.ctx.inverse(rt_s);
    const std::vector<u128> pw_s = polyPointwise(sh.mod, sh.a, sh.b);
    const std::vector<u128> sc_s = polyScale(sh.mod, sh.s, sh.a);

    simd::setHostSimdMode(simd::HostSimdMode::Native);
    std::vector<u128> ntt_v = sh.a;
    sh.ctx.forward(ntt_v);
    std::vector<u128> rt_v = ntt_v;
    sh.ctx.inverse(rt_v);
    const std::vector<u128> pw_v = polyPointwise(sh.mod, sh.a, sh.b);
    const std::vector<u128> sc_v = polyScale(sh.mod, sh.s, sh.a);

    if (ntt_s != ntt_v)
        fail("forward NTT diverges between scalar and native modes");
    if (rt_s != rt_v || rt_s != sh.a)
        fail("inverse NTT diverges or round trip is not the identity");
    if (pw_s != pw_v)
        fail("pointwise product diverges between modes");
    if (sc_s != sc_v)
        fail("scalar-span product diverges between modes");
}

} // namespace
} // namespace rpu

int
main()
{
    using namespace rpu;

    const std::vector<uint64_t> sizes = {1024, 2048, 4096, 8192, 16384};
    const unsigned bits = 45; // the schemes' default tower width
    static const char *const shape_names[] = {"ntt-roundtrip",
                                              "pointwise", "scale"};

    bench::header("host modmath throughput: scalar u128 vs SIMD");
    std::printf("kernel ISA = %s, mode at startup = %s, 45-bit NTT "
                "primes, host cores = %u\n",
                simd::hostSimdIsa(), simd::hostSimdModeName(),
                std::thread::hardware_concurrency());

    Rng rng(20230417);
    std::vector<Shape> shapes;
    shapes.reserve(sizes.size());
    for (uint64_t n : sizes)
        shapes.emplace_back(n, bits, rng);

    for (const Shape &sh : shapes)
        checkBitIdentity(sh);

    std::printf("\nelements/s (Melem/s), scalar reference vs native "
                "kernels\n");
    std::printf("%14s  %8s  %12s  %12s  %10s\n", "shape", "n",
                "scalar", "native", "speedup");
    bench::rule('-', 64);
    double worst = 1e300;
    for (int kind = 0; kind < 3; ++kind) {
        for (const Shape &sh : shapes) {
            const double scalar =
                measure(sh, kind, simd::HostSimdMode::Scalar);
            const double native =
                measure(sh, kind, simd::HostSimdMode::Native);
            const double speedup = native / scalar;
            if (speedup < worst)
                worst = speedup;
            std::printf("%14s  %8llu  %12.2f  %12.2f  %9.2fx\n",
                        shape_names[kind],
                        (unsigned long long)sh.n, scalar / 1e6,
                        native / 1e6, speedup);
            // Hard gate, not just a report: each side is measured
            // over >= 0.15 s of wall clock and the narrow kernels
            // replace 128-bit Montgomery with word-sized arithmetic,
            // so the margin is far above the threshold on any ISA
            // (including the scalar u64 fallback). Tripping it means
            // a dispatch or kernel regression, not runner noise.
            if (speedup < kSpeedupGate)
                fail("SIMD speedup fell below the 1.5x gate");
        }
    }

    std::printf("\nPASS: scalar and native modes bit-identical on all "
                "shapes, every (shape, n) cell >= %.1fx "
                "(worst %.2fx, ISA %s)\n",
                kSpeedupGate, worst, simd::hostSimdIsa());
    return 0;
}
