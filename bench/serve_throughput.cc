/**
 * @file
 * Multi-tenant serving under open-loop load: the latency/throughput
 * harness for the HeServer front-end.
 *
 * Three phases, each PASS-gated:
 *
 *  1. Bit-identity. A fixed mixed mulPlain/mulCt request set across
 *     four tenants runs through the server with coalescing on and
 *     off; every response must equal the per-tenant *serial*
 *     reference (Session::runSerial) exactly — not approximately —
 *     so cross-tenant batching is provably invisible to tenants.
 *
 *  2. Ledger. The same mulPlain set replayed against fresh devices
 *     with coalescing off vs on; DeviceStats windowed deltas must
 *     show strictly fewer launches for identical results, and the
 *     reduction factor is printed.
 *
 *  3. Open-loop sweep. A load generator submits requests on a fixed
 *     Poisson arrival schedule — arrivals do *not* wait for
 *     completions, so queueing delay and backpressure rejections
 *     appear as they would behind real tenants, instead of the
 *     closed-loop coordinated-omission picture. Three arrival rates
 *     (0.5x, 1x, 2x the calibrated serial capacity) drive four
 *     tenants; the table reports offered/accepted/rejected rates,
 *     sustained ops/s, and p50/p99/p999 total latency. At 2x the
 *     server must visibly saturate (rejections or sustained
 *     throughput below offered), and a sample of every response is
 *     still checked bit-identical against the serial reference.
 *
 * The binary exits 1 on any divergence; CI treats that as a job
 * failure. The tenant parameters, payload derivation, serial
 * calibration, and the open-loop Poisson sweep itself are shared with
 * shard_throughput via bench/bench_util.hh.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "rpu/device.hh"
#include "serve/server.hh"

namespace rpu {
namespace {

using serve::HeServer;
using serve::RequestOp;
using serve::ServeConfig;
using serve::ServeResponse;
using serve::Session;
using serve::SubmitStatus;
using serve::TenantConfig;

using bench::fail;
using bench::percentile;

using Clock = std::chrono::steady_clock;
using Cplx = std::complex<double>;

constexpr size_t kTenants = 4;

using bench::serveTenantParams;
using bench::slotValues;

std::unique_ptr<HeServer>
makeServer(bool coalesce, bool paused,
           const std::shared_ptr<RpuDevice> &device)
{
    ServeConfig cfg;
    cfg.queueCapacity = 64;
    cfg.maxBatch = 16;
    cfg.maxPerTenant = 4;
    cfg.maxCoalesce = 8;
    cfg.coalesce = coalesce;
    cfg.startPaused = paused;
    auto server = std::make_unique<HeServer>(cfg, device);
    for (uint64_t id = 1; id <= kTenants; ++id)
        server->addTenant({id, serveTenantParams(), 30});
    return server;
}

// ----------------------------------------------------------------------
// Phase 1: bit-identity against the per-tenant serial reference
// ----------------------------------------------------------------------

using Pending = bench::PendingServe;

std::vector<Pending>
submitMixedSet(HeServer &server, size_t perTenant)
{
    std::vector<Pending> out;
    for (size_t r = 0; r < perTenant; ++r) {
        for (uint64_t t = 1; t <= kTenants; ++t) {
            Pending p;
            p.tenant = t;
            p.seq = r;
            p.op = (r % 3 == 2) ? RequestOp::MulCtRescale
                                : RequestOp::MulPlainRescale;
            p.a = slotValues(16, 100 * t + r);
            p.b = slotValues(16, 900 * t + r);
            auto sub = server.submit(t, p.op, p.a, p.b);
            if (sub.status != SubmitStatus::Accepted)
                fail("bit-identity submit rejected (queue sized wrong)");
            p.response = std::move(sub.response);
            out.push_back(std::move(p));
        }
    }
    return out;
}

void
phaseBitIdentity()
{
    bench::header("phase 1: cross-tenant batching vs serial reference");
    for (bool coalesce : {true, false}) {
        auto server =
            makeServer(coalesce, true, std::make_shared<RpuDevice>());
        auto pending = submitMixedSet(*server, 6);
        server->shutdown(); // drains the paused queue deterministically

        size_t coalesced = 0;
        for (auto &p : pending) {
            ServeResponse resp = p.response.get();
            if (resp.chunkRequests > 1)
                ++coalesced;
            const Session *sess = server->tenant(p.tenant);
            if (resp.values != sess->runSerial(p.op, p.a, p.b, p.seq))
                fail("server response diverges from serial reference");
        }
        if (coalesce && coalesced == 0)
            fail("coalescing enabled but no request was coalesced");
        if (!coalesce && coalesced != 0)
            fail("coalescing disabled but requests were coalesced");
        std::printf("  coalesce=%-3s %3zu requests bit-identical to "
                    "runSerial (%zu served in shared chunks)\n",
                    coalesce ? "on" : "off", pending.size(), coalesced);
    }
}

// ----------------------------------------------------------------------
// Phase 2: ledger-verified launch reduction
// ----------------------------------------------------------------------

void
phaseLedger()
{
    bench::header("phase 2: ledger-verified launch reduction");
    uint64_t launches[2] = {0, 0};
    std::vector<std::vector<Cplx>> values[2];

    for (int pass = 0; pass < 2; ++pass) {
        const bool coalesce = pass == 1;
        auto device = std::make_shared<RpuDevice>();
        auto server = makeServer(coalesce, true, device);
        server->prewarm();

        std::vector<std::future<ServeResponse>> futures;
        for (size_t r = 0; r < 4; ++r) {
            for (uint64_t t = 1; t <= kTenants; ++t) {
                auto sub = server->submit(
                    t, RequestOp::MulPlainRescale,
                    slotValues(16, 10 * t + r), slotValues(16, 70 + r));
                if (sub.status != SubmitStatus::Accepted)
                    fail("ledger submit rejected");
                futures.push_back(std::move(sub.response));
            }
        }
        const DeviceStats before = device->stats();
        server->shutdown();
        const DeviceStats delta = device->statsSince(before);

        launches[pass] = delta.launches;
        for (auto &f : futures)
            values[pass].push_back(f.get().values);
        std::printf("  coalesce=%-3s %3zu requests -> %4llu launches, "
                    "%5llu pointwise tower products\n",
                    coalesce ? "on" : "off", futures.size(),
                    (unsigned long long)delta.launches,
                    (unsigned long long)delta.pointwiseMuls);
    }

    if (values[0] != values[1])
        fail("coalesced results differ from uncoalesced results");
    if (launches[1] >= launches[0])
        fail("coalescing did not reduce device launches");
    std::printf("  launch reduction: %.2fx fewer device launches for "
                "bit-identical results\n",
                double(launches[0]) / double(launches[1]));
}

// ----------------------------------------------------------------------
// Phase 3: open-loop latency sweep
// ----------------------------------------------------------------------

void
phaseOpenLoop()
{
    bench::header("phase 3: open-loop latency sweep (Poisson arrivals)");
    auto device = std::make_shared<RpuDevice>();
    const double capacity = bench::calibrateServeCapacity(device);
    std::printf("  calibrated serial capacity: %.1f ops/s "
                "(mulPlain+rescale, n=1024, 3 towers)\n\n",
                capacity);

    size_t requests = 120;
    if (const char *env = std::getenv("RPU_SERVE_REQUESTS"))
        requests = std::max(32ul, std::strtoul(env, nullptr, 10));

    const double factors[] = {0.5, 1.0, 2.0};
    std::printf("  %10s %10s %9s %9s %10s %10s %10s\n", "offered/s",
                "sustained", "accepted", "rejected", "p50 us",
                "p99 us", "p999 us");
    bench::rule('-', 74);

    std::vector<bench::OpenLoopRow> rows;
    for (double f : factors) {
        auto server = makeServer(true, false, device);
        server->prewarm();
        rows.push_back(bench::runServeOpenLoop(*server, f * capacity,
                                               requests, kTenants));
    }

    for (const bench::OpenLoopRow &r : rows) {
        std::printf("  %10.1f %10.1f %9zu %9zu %10.0f %10.0f %10.0f\n",
                    r.offered, r.sustained, r.accepted, r.rejected,
                    r.p50, r.p99, r.p999);
    }

    // At twice capacity the server must visibly saturate: either
    // backpressure rejected arrivals, or sustained throughput fell
    // measurably below the offered rate.
    const bench::OpenLoopRow &hot = rows.back();
    if (hot.rejected == 0 && hot.sustained >= 0.95 * hot.offered)
        fail("no saturation signal at 2x the calibrated capacity");
    if (rows.front().accepted == 0)
        fail("no requests accepted at half capacity");
}

} // namespace
} // namespace rpu

int
main()
{
    std::printf("Multi-tenant HE serving: open-loop throughput and "
                "latency\n%zu tenants, CKKS n=1024, 3 towers, "
                "cross-tenant coalescing up to 8 requests/chunk\n",
                rpu::kTenants);

    rpu::phaseBitIdentity();
    rpu::phaseLedger();
    rpu::phaseOpenLoop();

    std::printf("\nPASS: coalesced serving bit-identical to per-tenant "
                "serial execution, ledger-verified launch reduction, "
                "open-loop sweep saturates with backpressure\n");
    return 0;
}
