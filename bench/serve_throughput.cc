/**
 * @file
 * Multi-tenant serving under open-loop load: the latency/throughput
 * harness for the HeServer front-end.
 *
 * Three phases, each PASS-gated:
 *
 *  1. Bit-identity. A fixed mixed mulPlain/mulCt request set across
 *     four tenants runs through the server with coalescing on and
 *     off; every response must equal the per-tenant *serial*
 *     reference (Session::runSerial) exactly — not approximately —
 *     so cross-tenant batching is provably invisible to tenants.
 *
 *  2. Ledger. The same mulPlain set replayed against fresh devices
 *     with coalescing off vs on; DeviceStats windowed deltas must
 *     show strictly fewer launches for identical results, and the
 *     reduction factor is printed.
 *
 *  3. Open-loop sweep. A load generator submits requests on a fixed
 *     Poisson arrival schedule — arrivals do *not* wait for
 *     completions, so queueing delay and backpressure rejections
 *     appear as they would behind real tenants, instead of the
 *     closed-loop coordinated-omission picture. Three arrival rates
 *     (0.5x, 1x, 2x the calibrated serial capacity) drive four
 *     tenants; the table reports offered/accepted/rejected rates,
 *     sustained ops/s, and p50/p99/p999 total latency. At 2x the
 *     server must visibly saturate (rejections or sustained
 *     throughput below offered), and a sample of every response is
 *     still checked bit-identical against the serial reference.
 *
 * The binary exits 1 on any divergence; CI treats that as a job
 * failure.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "rpu/device.hh"
#include "serve/server.hh"

namespace rpu {
namespace {

using serve::HeServer;
using serve::RequestOp;
using serve::ServeConfig;
using serve::ServeResponse;
using serve::Session;
using serve::SubmitStatus;
using serve::TenantConfig;

using bench::fail;
using bench::percentile;

using Clock = std::chrono::steady_clock;
using Cplx = std::complex<double>;

constexpr size_t kTenants = 4;

CkksParams
tenantParams()
{
    CkksParams p;
    p.n = 1024;
    p.towers = 3;
    p.towerBits = 45;
    p.scale = 1099511627776.0; // 2^40
    p.noiseBound = 4;
    return p;
}

std::vector<Cplx>
slotValues(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Cplx> v(count);
    for (auto &z : v)
        z = {2.0 * rng.nextDouble() - 1.0, 2.0 * rng.nextDouble() - 1.0};
    return v;
}

std::unique_ptr<HeServer>
makeServer(bool coalesce, bool paused,
           const std::shared_ptr<RpuDevice> &device)
{
    ServeConfig cfg;
    cfg.queueCapacity = 64;
    cfg.maxBatch = 16;
    cfg.maxPerTenant = 4;
    cfg.maxCoalesce = 8;
    cfg.coalesce = coalesce;
    cfg.startPaused = paused;
    auto server = std::make_unique<HeServer>(cfg, device);
    for (uint64_t id = 1; id <= kTenants; ++id)
        server->addTenant({id, tenantParams(), 30});
    return server;
}

// ----------------------------------------------------------------------
// Phase 1: bit-identity against the per-tenant serial reference
// ----------------------------------------------------------------------

struct Pending
{
    uint64_t tenant = 0;
    uint64_t seq = 0;
    RequestOp op = RequestOp::MulPlainRescale;
    std::vector<Cplx> a, b;
    std::future<ServeResponse> response;
};

std::vector<Pending>
submitMixedSet(HeServer &server, size_t perTenant)
{
    std::vector<Pending> out;
    for (size_t r = 0; r < perTenant; ++r) {
        for (uint64_t t = 1; t <= kTenants; ++t) {
            Pending p;
            p.tenant = t;
            p.seq = r;
            p.op = (r % 3 == 2) ? RequestOp::MulCtRescale
                                : RequestOp::MulPlainRescale;
            p.a = slotValues(16, 100 * t + r);
            p.b = slotValues(16, 900 * t + r);
            auto sub = server.submit(t, p.op, p.a, p.b);
            if (sub.status != SubmitStatus::Accepted)
                fail("bit-identity submit rejected (queue sized wrong)");
            p.response = std::move(sub.response);
            out.push_back(std::move(p));
        }
    }
    return out;
}

void
phaseBitIdentity()
{
    bench::header("phase 1: cross-tenant batching vs serial reference");
    for (bool coalesce : {true, false}) {
        auto server =
            makeServer(coalesce, true, std::make_shared<RpuDevice>());
        auto pending = submitMixedSet(*server, 6);
        server->shutdown(); // drains the paused queue deterministically

        size_t coalesced = 0;
        for (auto &p : pending) {
            ServeResponse resp = p.response.get();
            if (resp.chunkRequests > 1)
                ++coalesced;
            const Session *sess = server->tenant(p.tenant);
            if (resp.values != sess->runSerial(p.op, p.a, p.b, p.seq))
                fail("server response diverges from serial reference");
        }
        if (coalesce && coalesced == 0)
            fail("coalescing enabled but no request was coalesced");
        if (!coalesce && coalesced != 0)
            fail("coalescing disabled but requests were coalesced");
        std::printf("  coalesce=%-3s %3zu requests bit-identical to "
                    "runSerial (%zu served in shared chunks)\n",
                    coalesce ? "on" : "off", pending.size(), coalesced);
    }
}

// ----------------------------------------------------------------------
// Phase 2: ledger-verified launch reduction
// ----------------------------------------------------------------------

void
phaseLedger()
{
    bench::header("phase 2: ledger-verified launch reduction");
    uint64_t launches[2] = {0, 0};
    std::vector<std::vector<Cplx>> values[2];

    for (int pass = 0; pass < 2; ++pass) {
        const bool coalesce = pass == 1;
        auto device = std::make_shared<RpuDevice>();
        auto server = makeServer(coalesce, true, device);
        server->prewarm();

        std::vector<std::future<ServeResponse>> futures;
        for (size_t r = 0; r < 4; ++r) {
            for (uint64_t t = 1; t <= kTenants; ++t) {
                auto sub = server->submit(
                    t, RequestOp::MulPlainRescale,
                    slotValues(16, 10 * t + r), slotValues(16, 70 + r));
                if (sub.status != SubmitStatus::Accepted)
                    fail("ledger submit rejected");
                futures.push_back(std::move(sub.response));
            }
        }
        const DeviceStats before = device->stats();
        server->shutdown();
        const DeviceStats delta = device->statsSince(before);

        launches[pass] = delta.launches;
        for (auto &f : futures)
            values[pass].push_back(f.get().values);
        std::printf("  coalesce=%-3s %3zu requests -> %4llu launches, "
                    "%5llu pointwise tower products\n",
                    coalesce ? "on" : "off", futures.size(),
                    (unsigned long long)delta.launches,
                    (unsigned long long)delta.pointwiseMuls);
    }

    if (values[0] != values[1])
        fail("coalesced results differ from uncoalesced results");
    if (launches[1] >= launches[0])
        fail("coalescing did not reduce device launches");
    std::printf("  launch reduction: %.2fx fewer device launches for "
                "bit-identical results\n",
                double(launches[0]) / double(launches[1]));
}

// ----------------------------------------------------------------------
// Phase 3: open-loop latency sweep
// ----------------------------------------------------------------------

/** Serial-path capacity estimate: timed runSerial on a scratch
 *  session, after warmup. The sweep's arrival rates scale off this,
 *  so the same binary saturates on any machine or sanitizer. */
double
calibrateSerialCapacity(const std::shared_ptr<RpuDevice> &device)
{
    Session scratch({99, tenantParams(), 30}, device);
    const auto a = slotValues(16, 11);
    const auto b = slotValues(16, 22);
    for (int i = 0; i < 3; ++i) // warm kernels and caches
        (void)scratch.runSerial(RequestOp::MulPlainRescale, a, b, i);
    const int reps = 10;
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i)
        (void)scratch.runSerial(RequestOp::MulPlainRescale, a, b, 100 + i);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return double(reps) / secs;
}

struct SweepRow
{
    double offered = 0;   ///< requested arrival rate (ops/s)
    double sustained = 0; ///< completions / wall time
    size_t accepted = 0;
    size_t rejected = 0;
    double p50 = 0, p99 = 0, p999 = 0; ///< total latency, micros
};

SweepRow
runOpenLoop(double rate, size_t requests,
            const std::shared_ptr<RpuDevice> &device)
{
    auto server = makeServer(true, false, device);
    server->prewarm();

    // Every tenant's payloads are fixed per seq so each accepted
    // response can be replayed serially for the identity spot-check.
    std::vector<Pending> accepted;
    accepted.reserve(requests);
    size_t rejected = 0;

    // Open loop: the next arrival time is scheduled from the Poisson
    // process alone. If the server is slow, submissions do not slow
    // down with it — the queue fills and rejections surface, exactly
    // what a latency study must observe.
    std::mt19937_64 gen(12345);
    std::exponential_distribution<double> interval(rate);
    const auto start = Clock::now();
    auto next = start;
    std::vector<uint64_t> seqs(kTenants, 0);
    for (size_t i = 0; i < requests; ++i) {
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(interval(gen)));
        std::this_thread::sleep_until(next);
        const uint64_t tenant = 1 + i % kTenants;
        Pending p;
        p.tenant = tenant;
        p.op = RequestOp::MulPlainRescale;
        p.a = slotValues(16, 40 * tenant + seqs[tenant - 1]);
        p.b = slotValues(16, 7000 + seqs[tenant - 1]);
        auto sub = server->submit(tenant, p.op, p.a, p.b);
        ++seqs[tenant - 1]; // seq advances even for rejected requests
        if (sub.status == SubmitStatus::Accepted) {
            p.seq = seqs[tenant - 1] - 1;
            p.response = std::move(sub.response);
            accepted.push_back(std::move(p));
        } else {
            ++rejected;
        }
    }
    server->shutdown();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::vector<double> totals;
    totals.reserve(accepted.size());
    for (size_t i = 0; i < accepted.size(); ++i) {
        ServeResponse resp = accepted[i].response.get();
        totals.push_back(resp.totalMicros);
        // Spot-check the open-loop traffic against the serial
        // reference too — saturation must never corrupt results.
        if (i % 16 == 0) {
            const Session *sess = server->tenant(accepted[i].tenant);
            if (resp.values != sess->runSerial(accepted[i].op,
                                               accepted[i].a,
                                               accepted[i].b,
                                               accepted[i].seq))
                fail("open-loop response diverges from serial reference");
        }
    }
    const auto stats = server->stats();
    if (stats.failed != 0)
        fail("open-loop run reported failed requests");
    if (stats.completed != accepted.size())
        fail("accepted and completed counts disagree after drain");

    std::sort(totals.begin(), totals.end());
    SweepRow row;
    row.offered = rate;
    row.sustained = double(accepted.size()) / wall;
    row.accepted = accepted.size();
    row.rejected = rejected;
    row.p50 = percentile(totals, 0.50);
    row.p99 = percentile(totals, 0.99);
    row.p999 = percentile(totals, 0.999);
    return row;
}

void
phaseOpenLoop()
{
    bench::header("phase 3: open-loop latency sweep (Poisson arrivals)");
    auto device = std::make_shared<RpuDevice>();
    const double capacity = calibrateSerialCapacity(device);
    std::printf("  calibrated serial capacity: %.1f ops/s "
                "(mulPlain+rescale, n=1024, 3 towers)\n\n",
                capacity);

    size_t requests = 120;
    if (const char *env = std::getenv("RPU_SERVE_REQUESTS"))
        requests = std::max(32ul, std::strtoul(env, nullptr, 10));

    const double factors[] = {0.5, 1.0, 2.0};
    std::printf("  %10s %10s %9s %9s %10s %10s %10s\n", "offered/s",
                "sustained", "accepted", "rejected", "p50 us",
                "p99 us", "p999 us");
    bench::rule('-', 74);

    std::vector<SweepRow> rows;
    for (double f : factors)
        rows.push_back(runOpenLoop(f * capacity, requests, device));

    for (const SweepRow &r : rows) {
        std::printf("  %10.1f %10.1f %9zu %9zu %10.0f %10.0f %10.0f\n",
                    r.offered, r.sustained, r.accepted, r.rejected,
                    r.p50, r.p99, r.p999);
    }

    // At twice capacity the server must visibly saturate: either
    // backpressure rejected arrivals, or sustained throughput fell
    // measurably below the offered rate.
    const SweepRow &hot = rows.back();
    if (hot.rejected == 0 && hot.sustained >= 0.95 * hot.offered)
        fail("no saturation signal at 2x the calibrated capacity");
    if (rows.front().accepted == 0)
        fail("no requests accepted at half capacity");
}

} // namespace
} // namespace rpu

int
main()
{
    std::printf("Multi-tenant HE serving: open-loop throughput and "
                "latency\n%zu tenants, CKKS n=1024, 3 towers, "
                "cross-tenant coalescing up to 8 requests/chunk\n",
                rpu::kTenants);

    rpu::phaseBitIdentity();
    rpu::phaseLedger();
    rpu::phaseOpenLoop();

    std::printf("\nPASS: coalesced serving bit-identical to per-tenant "
                "serial execution, ledger-verified launch reduction, "
                "open-loop sweep saturates with backpressure\n");
    return 0;
}
