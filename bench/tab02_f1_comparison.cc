/**
 * @file
 * Section VII reproduction: RPU vs the F1 accelerator on a 16K NTT.
 * F1's published numbers (scaled 4x from 32b to 128b data, one
 * compute cluster, NTT functional unit + register file only) against
 * our measured (128,128) RPU with the HPLE + VRF area subset.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "model/comparisons.hh"

using namespace rpu;

int
main()
{
    bench::header("Section VII: RPU vs F1 (16K NTT, 128-bit data)");

    NttRunner runner(16384, 124);
    RpuConfig cfg; // (128, 128)
    NttCodegenOptions opts;
    opts.scheduleConfig = cfg;
    const NttKernel kernel = runner.makeKernel(opts);
    const bool ok = runner.verify(kernel);
    const KernelMetrics m = runner.evaluate(kernel, cfg);

    const F1Comparison f1 = f1Comparison();
    const double rpu_ns = m.runtimeUs * 1e3;
    const double rpu_area = m.area.lawEngine + m.area.vrf;

    std::printf("  %-22s %12s %12s %18s\n", "", "16K NTT (ns)",
                "area (mm^2)", "1/(latency*area)");
    bench::rule();
    const double f1_lpa = 1.0 / (f1.f1Ntt16kNs * f1.f1AreaMm2);
    const double rpu_lpa = 1.0 / (rpu_ns * rpu_area);
    const double paper_lpa =
        1.0 / (f1.rpuPaperNtt16kNs * f1.rpuPaperAreaMm2);
    std::printf("  %-22s %12.0f %12.2f %18.3e\n",
                "F1 (scaled, published)", f1.f1Ntt16kNs, f1.f1AreaMm2,
                f1_lpa);
    std::printf("  %-22s %12.0f %12.2f %18.3e\n", "RPU (paper)",
                f1.rpuPaperNtt16kNs, f1.rpuPaperAreaMm2, paper_lpa);
    std::printf("  %-22s %12.0f %12.2f %18.3e\n", "RPU (this repo)",
                rpu_ns, rpu_area, rpu_lpa);
    bench::rule();
    std::printf("  repo-RPU vs paper-RPU 16K latency: %.2fx\n",
                rpu_ns / f1.rpuPaperNtt16kNs);
    std::printf("  note: the paper credits F1 with ~2x *throughput*/"
                "area thanks to its deeply\n"
                "  pipelined fixed-function NTT unit; per-NTT latency*"
                "area (above) favours the RPU.\n");
    std::printf("  F1 max polynomial degree: %u; RPU: unlimited "
                "(scratchpad-bounded)\n", f1.maxF1PolyDegree);
    std::printf("  functional verification: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
