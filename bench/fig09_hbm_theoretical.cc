/**
 * @file
 * Fig. 9 reproduction: NTT runtime on the (128,128) RPU vs the
 * theoretical (ideal-multiplier) latency and the HBM2 load/store time,
 * for polynomial degrees 1K..64K. The bar labels in the paper are the
 * ratio of measured to theoretical runtime, shrinking from 3.86x at
 * 1K to 1.38x at 64K; a 512 GB/s HBM2 always transfers faster than
 * the NTT computes.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "model/hbm.hh"

using namespace rpu;

int
main()
{
    bench::header("Fig. 9: NTT runtime vs theoretical vs HBM2 "
                  "(128,128)");
    std::printf("  %-8s %10s %14s %8s %12s %12s %10s\n", "degree",
                "NTT (us)", "theory (us)", "ratio", "HBM load",
                "HBM store", "HBM < NTT");
    bench::rule(' ', 0);
    bench::rule();
    bool ok = true;
    for (uint64_t n : {1024ull, 2048ull, 4096ull, 8192ull, 16384ull,
                       32768ull, 65536ull}) {
        NttRunner runner(n, 124);
        RpuConfig cfg;
        NttCodegenOptions opts;
        opts.scheduleConfig = cfg;
        const KernelMetrics m =
            runner.evaluate(runner.makeKernel(opts), cfg);
        const double theory = theoreticalNttUs(n, cfg.numHples,
                                               m.freqGhz);
        const double hbm = hbmTransferUs(n);
        const bool covered = hbm <= m.runtimeUs;
        ok = ok && covered;
        std::printf("  %-8llu %10.3f %14.3f %7.2fx %9.3f us %9.3f us "
                    "%10s\n",
                    (unsigned long long)n, m.runtimeUs, theory,
                    m.runtimeUs / theory, hbm, hbm,
                    covered ? "yes" : "NO");
    }
    bench::rule();
    std::printf("  paper ratio labels: 3.86 (1K), 2.35, 1.71, 1.49, "
                "1.42, 1.39, 1.38 (64K)\n");
    std::printf("  512 GB/s HBM2 sufficient for all degrees: %s "
                "(paper: yes)\n", ok ? "yes" : "no");
    return ok ? 0 : 1;
}
