/**
 * @file
 * Serial vs parallel launchAll throughput across tower counts and
 * worker counts.
 *
 * The paper's RPU hides latency by processing independent RNS towers
 * simultaneously; on the host side, RpuDevice::setParallelism fans a
 * batch of independent tower launches across a worker pool. This
 * bench measures what that dispatch concurrency is actually worth in
 * wall-clock terms, for both launch shapes the RNS-resident schemes
 * issue: the fused negacyclic product (the Coeff<->Eval boundary
 * shape — what the old wide-modulus BFV paid per multiply) and the
 * pointwise product (the steady-state shape of an Eval-resident
 * chain). One launch per tower, batch sizes 1..16 towers, worker
 * counts 1..8.
 *
 * Results are workload-true (each launch runs the full functional
 * simulation of a generated B512 program) but host-dependent: the
 * speedup ceiling is min(workers, towers, host cores). Parallel
 * results are asserted bit-identical to serial before any number is
 * reported.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "modmath/primegen.hh"
#include "modmath/simd.hh"
#include "poly/polynomial.hh"
#include "rpu/device.hh"

namespace rpu {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Workload
{
    std::vector<LaunchRequest> batch;
    std::vector<std::vector<std::vector<u128>>> expected;
};

/** One per-tower product per request, kernels pre-generated. */
Workload
makeWorkload(RpuDevice &dev, KernelKind kind, uint64_t n,
             size_t towers)
{
    const auto primes = nttPrimes(60, n, towers);
    Rng rng(uint64_t(towers) * 977 + 11);
    Workload w;
    for (u128 q : primes) {
        const KernelImage &k = dev.kernel(kind, n, {q});
        const Modulus mod(q);
        w.batch.push_back(
            {&k, {randomPoly(mod, n, rng), randomPoly(mod, n, rng)}});
    }
    w.expected = dev.launchAll(w.batch); // serial golden results
    return w;
}

/** Batches/second of launchAll over @p w at the current parallelism. */
double
throughput(RpuDevice &dev, const Workload &w, int reps)
{
    // Warm-up run doubles as the bit-identity check.
    if (dev.launchAll(w.batch) != w.expected) {
        std::fprintf(stderr,
                     "FAIL: parallel results diverge from serial\n");
        std::exit(1);
    }
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r)
        dev.launchAll(w.batch);
    return reps / secondsSince(t0);
}

} // namespace
} // namespace rpu

int
main()
{
    using namespace rpu;

    const uint64_t n = 1024;
    const int reps = 5;
    const std::vector<size_t> tower_counts = {1, 2, 4, 8, 16};
    const std::vector<unsigned> worker_counts = {1, 2, 4, 8};

    bench::header("launchAll throughput: serial vs worker pool");
    std::printf("n = %llu, %d reps/cell, host cores = %u, "
                "host SIMD = %s (%s)\n",
                (unsigned long long)n, reps,
                std::thread::hardware_concurrency(),
                simd::hostSimdModeName(), simd::hostSimdIsa());
    std::printf("cells: batches/s (speedup vs 1 worker)\n");

    RpuDevice dev;
    const struct
    {
        KernelKind kind;
        const char *label;
    } shapes[] = {
        {KernelKind::PolyMul,
         "fused negacyclic products (domain-boundary shape)"},
        {KernelKind::PointwiseMul,
         "pointwise products (eval-resident steady-state shape)"},
    };
    for (const auto &shape : shapes) {
        std::printf("\n%s\n", shape.label);
        std::printf("%8s", "towers");
        for (unsigned wkr : worker_counts)
            std::printf("  %18u", wkr);
        std::printf("\n");
        bench::rule('-', 8 + 20 * int(worker_counts.size()));
        for (size_t towers : tower_counts) {
            const Workload w =
                makeWorkload(dev, shape.kind, n, towers);
            std::printf("%8zu", towers);
            double serial = 0.0;
            for (unsigned wkr : worker_counts) {
                dev.setParallelism(wkr);
                const double bps = throughput(dev, w, reps);
                if (wkr == 1)
                    serial = bps;
                std::printf("  %10.2f (%4.2fx)", bps,
                            serial > 0 ? bps / serial : 0.0);
            }
            dev.setParallelism(1);
            std::printf("\n");
        }
    }

    std::printf("\nPASS: every parallel batch bit-identical to serial\n");
    return 0;
}
