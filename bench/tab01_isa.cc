/**
 * @file
 * Table I reproduction: the B512 instruction set, its 64-bit field
 * encoding, and a sample of SPIRAL-substitute generated code (the
 * paper's Listing 1 analogue).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "isa/encoding.hh"
#include "rpu/runner.hh"

using namespace rpu;

namespace {

void
show(const Instruction &instr, const char *cls)
{
    const uint64_t w = encode(instr);
    std::printf("  %-9s %-10s %016llx  %s\n", cls,
                mnemonic(instr.op, instr.bfly).c_str(),
                (unsigned long long)w, instr.toString().c_str());
}

} // namespace

int
main()
{
    bench::header("Table I: the B512 ISA (17 instructions)");
    std::printf("field layout: [63:55] VD1  [54:49] VT1  [48] BFLY  "
                "[47:44] OPCODE\n"
                "              [43:24] ADDRESS  [23:18] VD  [17:12] "
                "VS/MODE  [11:6] VT/VALUE  [5:0] RM/RT\n\n");
    std::printf("  %-9s %-10s %-17s %s\n", "class", "mnemonic",
                "encoding", "example");
    bench::rule();

    show(Instruction::vload(1, 0, 0), "LSI");
    show(Instruction::vload(2, 0, 8192, AddrMode::STRIDED, 1), "LSI");
    show(Instruction::vload(3, 0, 0, AddrMode::STRIDED_SKIP, 4), "LSI");
    show(Instruction::vload(4, 1, 64, AddrMode::REPEATED, 3), "LSI");
    show(Instruction::vstore(5, 0, 1024), "LSI");
    show(Instruction::sload(2, 17), "LSI");
    show(Instruction::vbcast(19, 3, 1), "LSI");
    show(Instruction::mload(1, 0), "LSI");
    show(Instruction::aload(2, 3), "LSI");
    show(Instruction::vv(Opcode::VADDMOD, 58, 60, 59, 1), "CI");
    show(Instruction::vv(Opcode::VSUBMOD, 57, 60, 59, 1), "CI");
    show(Instruction::vv(Opcode::VMULMOD, 59, 20, 19, 1), "CI");
    show(Instruction::butterfly(10, 11, 1, 2, 3, 1), "CI+BFLY");
    show(Instruction::vs_(Opcode::VSADDMOD, 6, 7, 2, 1), "CI");
    show(Instruction::vs_(Opcode::VSSUBMOD, 6, 7, 2, 1), "CI");
    show(Instruction::vs_(Opcode::VSMULMOD, 6, 7, 2, 1), "CI");
    show(Instruction::shuffle(Opcode::UNPKLO, 56, 58, 57), "SI");
    show(Instruction::shuffle(Opcode::UNPKHI, 55, 58, 57), "SI");
    show(Instruction::shuffle(Opcode::PKLO, 54, 56, 55), "SI");
    show(Instruction::shuffle(Opcode::PKHI, 53, 56, 55), "SI");

    bench::header("Listing 1 analogue: generated radix-2 1,024-point "
                  "NTT kernel (head)");
    NttRunner runner(1024, 124);
    const NttKernel kernel = runner.makeKernel();
    const bool ok = runner.verify(kernel);
    std::printf("// kernel %s: %zu instructions, verified %s\n",
                kernel.program.name().c_str(), kernel.program.size(),
                ok ? "against the reference NTT" : "FAILED");
    const auto mix = kernel.program.mix();
    std::printf("// mix: %llu loads, %llu stores, %llu broadcasts, "
                "%llu compute (%llu butterflies), %llu shuffles\n",
                (unsigned long long)mix.loads,
                (unsigned long long)mix.stores,
                (unsigned long long)mix.broadcasts,
                (unsigned long long)mix.compute,
                (unsigned long long)mix.butterflies,
                (unsigned long long)mix.shuffles);
    for (size_t i = 0; i < kernel.program.size() && i < 24; ++i)
        std::printf("  %s\n", kernel.program[i].toString().c_str());
    std::printf("  ... (%zu more)\n", kernel.program.size() - 24);
    return ok ? 0 : 1;
}
