/**
 * @file
 * Ciphertext x ciphertext multiply with gadget-decomposed
 * relinearisation: phase-split transform ledger and chains/s.
 *
 * The multiply is one shared RlweEvaluator pipeline — tensor product
 * as pure pointwise launches, gadget digit split of c2, batched
 * re-entry forward NTTs, pointwise inner product against the key —
 * and every launch is attributed: the table below splits one
 * multiply's device work into its three phases and asserts the
 * decomposition phase costs exactly what the gadget arithmetic
 * predicts, one batched inverse pass (L tower transforms) plus
 * digits * towers forward re-entry NTTs, all annotated as
 * key-switch transforms so the workload transform count of the
 * whole multiply stays zero.
 *
 * Results are workload-true (every launch runs the full functional
 * simulation of a generated B512 program). Before any number is
 * reported, BFV's mulCt is decrypted and checked against the naive
 * negacyclic product of the plaintexts AND the independent
 * wide-integer reference decrypt, and the host, serial, and pooled
 * backends are asserted bit-identical; the binary exits 1 on any
 * divergence, which CI treats as a job failure.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "modmath/simd.hh"
#include "rlwe/bfv.hh"
#include "rlwe/ckks.hh"
#include "rpu/device.hh"

namespace rpu {
namespace {

using bench::fail;
using bench::secondsSince;

using Clock = std::chrono::steady_clock;
using Cplx = std::complex<double>;

bool
identical(const CkksCiphertext &a, const CkksCiphertext &b)
{
    return a.c0 == b.c0 && a.c1 == b.c1;
}

/** Naive negacyclic product of two mod-t vectors (x^n = -1). */
std::vector<uint64_t>
naiveNegacyclicModT(const std::vector<uint64_t> &a,
                    const std::vector<uint64_t> &b, uint64_t t)
{
    const size_t n = a.size();
    std::vector<int64_t> acc(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (b[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            const size_t k = (i + j) % n;
            const int64_t sign = (i + j) < n ? 1 : -1;
            acc[k] += sign * int64_t((a[j] * b[i]) % t);
            acc[k] %= int64_t(t);
        }
    }
    std::vector<uint64_t> out(n);
    for (size_t k = 0; k < n; ++k)
        out[k] = uint64_t((acc[k] + int64_t(t)) % int64_t(t));
    return out;
}

/** A CKKS multiply workload at one chain length. */
struct Workload
{
    std::unique_ptr<CkksContext> ctx;
    RelinKey rk;
    CkksCiphertext ct_a;
    CkksCiphertext ct_b;
    CkksCiphertext expected; ///< host golden multiply result
};

Workload
makeWorkload(size_t towers, unsigned digitBits)
{
    CkksParams params;
    params.n = 1024;
    params.towers = towers;
    params.towerBits = 45;
    params.scale = 1099511627776.0; // 2^40
    params.noiseBound = 4;

    Workload w;
    w.ctx = std::make_unique<CkksContext>(params, towers * 31 + 7);
    const CkksSecretKey sk = w.ctx->keygen();
    w.rk = w.ctx->makeRelinKey(sk, digitBits);

    Rng rng(uint64_t(towers) * 911 + digitBits);
    std::vector<Cplx> x(w.ctx->slots()), y(w.ctx->slots());
    for (size_t i = 0; i < x.size(); ++i) {
        x[i] = {double(rng.below64(2000)) / 1000.0 - 1.0,
                double(rng.below64(2000)) / 1000.0 - 1.0};
        y[i] = {double(rng.below64(2000)) / 1000.0 - 1.0,
                double(rng.below64(2000)) / 1000.0 - 1.0};
    }
    w.ct_a = w.ctx->encrypt(sk, x);
    w.ct_b = w.ctx->encrypt(sk, y);
    // Golden multiply on the host path; the slots must match the
    // plaintext products within CKKS precision.
    w.expected = w.ctx->mulCt(w.ct_a, w.ct_b, w.rk);
    const auto got = w.ctx->decrypt(sk, w.expected);
    for (size_t i = 0; i < x.size(); ++i) {
        const Cplx want = x[i] * y[i];
        if (std::abs(got[i] - want) >
            std::ldexp(1.0, -20) * std::max(1.0, std::abs(want)))
            fail("CKKS multiply slots diverge from plaintext products");
    }
    return w;
}

/**
 * The phase-split transform ledger of one multiply on the serial
 * backend: tensor product, then the relinearisation measured as one
 * call and attributed to its digit-decomposition (transforms) and
 * inner-product (pointwise) halves. Asserts every count against the
 * gadget arithmetic's prediction.
 */
void
phaseTable(const std::shared_ptr<RpuDevice> &device, Workload &w)
{
    const size_t L = w.ct_a.towers();
    const uint64_t digits = w.rk.totalDigits(L);
    const RlweEvaluator &ev = w.ctx->evaluator();

    // Tensor phase: four cross products, operand conversions elided.
    device->resetCounters();
    auto d = ev.tensorPair(w.ct_a.c0, w.ct_a.c1, w.ct_b.c0, w.ct_b.c1);
    const DeviceStats tensor = device->stats();

    // Relinearisation: digit split + re-entry + inner product.
    device->resetCounters();
    auto out = ev.relinearise(d[0], d[1], std::move(d[2]), w.rk);
    const DeviceStats relin = device->stats();
    if (!identical({std::move(out[0]), std::move(out[1]), 1.0},
                   w.expected))
        fail("phase-split multiply diverges from the golden result");

    const auto row = [&](const char *phase, const DeviceStats &s,
                         uint64_t pointwise) {
        std::printf("%8zu  %8llu  %14s  %8llu  %8llu  %10llu  %10llu  "
                    "%8llu\n",
                    L, (unsigned long long)digits, phase,
                    (unsigned long long)s.forwardTransforms,
                    (unsigned long long)s.inverseTransforms,
                    (unsigned long long)pointwise,
                    (unsigned long long)s.keySwitchTransforms,
                    (unsigned long long)s.transformsElided);
    };
    row("tensor", tensor, tensor.pointwiseMuls);
    // The two relinearisation halves share one stats window: the
    // transforms all belong to the digit decomposition, the
    // pointwise launches all to the key inner product.
    DeviceStats decomp = relin;
    decomp.transformsElided = 0;
    row("decomposition", decomp, 0);
    DeviceStats inner;
    row("inner-product", inner, relin.pointwiseMuls);

    // The predicted ledger, asserted. Tensor: 4 pointwise tower
    // products per tower, all 4 operand conversions elided, zero
    // transforms issued.
    if (tensor.transformsIssued() != 0)
        fail("tensor product issued a device NTT");
    if (tensor.pointwiseMuls != 4 * L || tensor.transformsElided != 4 * L)
        fail("tensor pointwise/elision counts off prediction");
    // Decomposition: exactly 1 batched inverse pass (L tower
    // transforms) to split c2, digits * towers forward re-entry
    // NTTs, every one annotated as key-switch plumbing.
    if (relin.inverseTransforms != L)
        fail("digit split should cost exactly 1 inverse pass");
    if (relin.forwardTransforms != digits * L)
        fail("re-entry should cost digits * towers forward NTTs");
    if (relin.keySwitchTransforms != (digits + 1) * L)
        fail("key-switch annotation misses transforms");
    if (relin.workloadTransforms() != 0)
        fail("relinearisation leaked transforms into the workload count");
    // Inner product: 2 * digits pointwise pairs, each over L towers.
    if (relin.pointwiseMuls != 2 * digits * L)
        fail("key inner product launch count off prediction");
}

/** Multiplies/second; every warm-up is checked against the golden. */
double
throughput(const Workload &w, int reps, double min_seconds)
{
    if (!identical(w.ctx->mulCt(w.ct_a, w.ct_b, w.rk), w.expected))
        fail("multiply diverges from the golden result");
    const auto t0 = Clock::now();
    int done = 0;
    do {
        for (int r = 0; r < reps; ++r)
            w.ctx->mulCt(w.ct_a, w.ct_b, w.rk);
        done += reps;
    } while (secondsSince(t0) < min_seconds);
    return done / secondsSince(t0);
}

/**
 * BFV correctness gate: ct x ct must decrypt to the negacyclic
 * product of the plaintexts, the independent wide-integer reference
 * decrypt must agree bit for bit, and host/serial/pooled runs must
 * be bit-identical.
 */
void
bfvCorrectnessGate()
{
    RlweParams params;
    params.n = 1024;
    params.towers = 2;
    params.towerBits = 50;
    params.plaintextModulus = 65537;
    params.noiseBound = 4;

    BfvContext ctx(params);
    const SecretKey sk = ctx.keygen();
    const RelinKey rk = ctx.makeRelinKey(sk, 16);

    Rng rng(2027);
    std::vector<uint64_t> a(params.n), b(params.n);
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.below64(params.plaintextModulus);
        b[i] = rng.below64(params.plaintextModulus);
    }
    const Ciphertext ct_a = ctx.encrypt(sk, a);
    const Ciphertext ct_b = ctx.encrypt(sk, b);
    const auto expected =
        naiveNegacyclicModT(a, b, params.plaintextModulus);

    const Ciphertext host = ctx.mulCt(ct_a, ct_b, rk);
    if (ctx.decrypt(sk, host) != expected)
        fail("BFV multiply does not decrypt to the negacyclic product");
    if (ctx.decryptWideReference(sk, host) != expected)
        fail("wide-integer reference decrypt diverges on the product");

    const auto device = std::make_shared<RpuDevice>();
    for (unsigned workers : {1u, 4u}) {
        device->setParallelism(workers);
        ctx.attachDevice(device);
        const Ciphertext ct = ctx.mulCt(ct_a, ct_b, rk);
        if (!(ct.c0 == host.c0 && ct.c1 == host.c1))
            fail("device multiply is not bit-identical to the host");
    }
    std::printf("BFV gate: decrypt == naive negacyclic product == "
                "wide-integer reference;\n  host/serial/pooled "
                "bit-identical (n=%llu, L=%zu, 50-bit towers)\n",
                (unsigned long long)params.n, params.towers);
}

} // namespace
} // namespace rpu

int
main()
{
    using namespace rpu;

    const int reps = 2;
    const std::vector<size_t> tower_counts = {2, 3, 4};

    bench::header("ct x ct multiply: gadget-decomposed relinearisation");
    std::printf("CKKS, n = 1024, 45-bit towers, scale = 2^40, digit "
                "base 2^16 unless swept;\nhost cores = %u, host SIMD "
                "= %s (%s)\n",
                std::thread::hardware_concurrency(),
                simd::hostSimdModeName(), simd::hostSimdIsa());

    bfvCorrectnessGate();

    const auto device = std::make_shared<RpuDevice>();

    // -- Phase-split transform ledger ---------------------------------
    std::printf("\nper-multiply device work by phase (serial backend, "
                "digit base 2^16)\n");
    std::printf("%8s  %8s  %14s  %8s  %8s  %10s  %10s  %8s\n", "towers",
                "digits", "phase", "ntt-fwd", "ntt-inv", "pointwise",
                "key-switch", "elided");
    bench::rule('-', 88);
    std::vector<Workload> workloads;
    for (size_t towers : tower_counts) {
        workloads.push_back(makeWorkload(towers, 16));
        workloads.back().ctx->attachDevice(device);
        phaseTable(device, workloads.back());
    }
    std::printf("(decomposition must cost exactly 1 inverse pass + "
                "digits x towers forward\n re-entry NTTs, all "
                "annotated key-switch: workload transforms stay 0)\n");

    // -- Digit-base sweep: ledger cost vs chains/s --------------------
    std::printf("\ndigit-base sweep at L = 3 (serial backend)\n");
    std::printf("%10s  %8s  %12s  %12s  %12s\n", "digit base", "digits",
                "ks-transforms", "pointwise", "mults/s");
    bench::rule('-', 62);
    for (unsigned digitBits : {30u, 16u, 10u}) {
        Workload w = makeWorkload(3, digitBits);
        w.ctx->attachDevice(device);
        const size_t L = w.ct_a.towers();
        device->resetCounters();
        if (!identical(w.ctx->mulCt(w.ct_a, w.ct_b, w.rk), w.expected))
            fail("swept multiply diverges from the golden result");
        const DeviceStats s = device->stats();
        const double mults = throughput(w, reps, 0.25);
        std::printf("      2^%-2u  %8llu  %12llu  %12llu  %12.2f\n",
                    digitBits,
                    (unsigned long long)w.rk.totalDigits(L),
                    (unsigned long long)s.keySwitchTransforms,
                    (unsigned long long)s.pointwiseMuls, mults);
    }

    // -- Pool scaling of the full multiply ----------------------------
    std::printf("\nmultiplies/s vs worker count (digit base 2^16, "
                "speedup vs 1 worker)\n");
    std::printf("%8s", "towers");
    for (unsigned wkr : {1u, 2u, 4u, 8u})
        std::printf("  %18u", wkr);
    std::printf("\n");
    bench::rule('-', 8 + 20 * 4);
    for (Workload &w : workloads) {
        std::printf("%8zu", w.ct_a.towers());
        double serial = 0.0;
        for (unsigned wkr : {1u, 2u, 4u, 8u}) {
            device->setParallelism(wkr);
            const double ops = throughput(w, reps, 0.0);
            if (wkr == 1)
                serial = ops;
            std::printf("  %10.2f (%4.2fx)", ops,
                        serial > 0 ? ops / serial : 0.0);
        }
        device->setParallelism(1);
        std::printf("\n");
    }

    std::printf("\nPASS: decomposition transform count matches the "
                "predicted 1 inverse + digits x towers\nforward NTTs "
                "per relinearisation, key-switch fully annotated "
                "(workload transforms 0),\nBFV product pinned against "
                "the naive negacyclic and wide-integer references, "
                "and\nhost/serial/pooled runs bit-identical\n");
    return 0;
}
