/**
 * @file
 * Fig. 6 reproduction: 64K NTT runtime for optimized vs unoptimized
 * programs sweeping HPLEs at 128 banks. The paper's hardware-aware
 * code is 1.8x faster on average.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"

using namespace rpu;

int
main()
{
    bench::header("Fig. 6: 64K NTT runtime, optimized vs unoptimized");
    NttRunner runner(65536, 124);

    std::printf("  %-7s %16s %18s %8s\n", "HPLEs", "optimized (us)",
                "unoptimized (us)", "ratio");
    bench::rule();
    double geo = 1.0;
    unsigned count = 0;
    for (unsigned h : bench::hpleSweep()) {
        RpuConfig cfg;
        cfg.numHples = h;
        cfg.numBanks = 128;

        NttCodegenOptions opt;
        opt.scheduleConfig = cfg;
        const KernelMetrics mo =
            runner.evaluate(runner.makeKernel(opt), cfg);

        NttCodegenOptions naive;
        naive.optimized = false;
        const KernelMetrics mn =
            runner.evaluate(runner.makeKernel(naive), cfg);

        const double ratio = mn.runtimeUs / mo.runtimeUs;
        geo *= ratio;
        ++count;
        std::printf("  %-7u %16.2f %18.2f %7.2fx\n", h, mo.runtimeUs,
                    mn.runtimeUs, ratio);
    }
    bench::rule();
    std::printf("  geomean speedup from hardware-aware code: %.2fx "
                "(paper: ~1.8x average)\n",
                std::pow(geo, 1.0 / count));
    return 0;
}
