/**
 * @file
 * BFV chain throughput on the device: RNS-resident evaluation-domain
 * ciphertexts vs a system that re-enters coefficient form after
 * every op.
 *
 * One "chain" is the scheme's hot path — add -> mulPlain -> add
 * against a pre-encoded plaintext. Eval-resident ciphertexts run it
 * as host tower adds plus pure pointwise launches: the device issues
 * *zero* NTT launches of either direction per chain (asserted below,
 * and visible in the transform table). The coefficient-resident
 * baseline converts into the evaluation domain before the multiply
 * and back out after it, paying the batched forward/inverse
 * transforms the old wide-modulus representation paid on every
 * single product.
 *
 * Results are workload-true (every launch runs the full functional
 * simulation of a generated B512 program). Before any number is
 * reported, the two paths are asserted bit-identical (the Eval chain
 * converted to coefficients must equal the Coeff chain exactly), the
 * decrypt is cross-checked against the retained wide-modulus
 * reference decrypt, and every pooled run is asserted bit-identical
 * to serial; the binary exits 1 on any divergence, which CI treats
 * as a job failure.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "modmath/simd.hh"
#include "rlwe/bfv.hh"
#include "rpu/device.hh"

namespace rpu {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Workload
{
    std::unique_ptr<BfvContext> ctx;
    Ciphertext ct_a;       ///< Eval-resident fresh ciphertext
    Ciphertext ct_b;       ///< second operand for the adds
    Ciphertext ct_a_coeff; ///< ct_a, Coeff-resident
    Ciphertext ct_b_coeff; ///< ct_b, Coeff-resident
    BfvPlaintext pt;       ///< encoded once, reused every chain
    Ciphertext expected;   ///< serial golden chain result (Coeff)
};

/** add -> mulPlain -> add with Eval-resident ciphertexts. */
Ciphertext
evalChain(const Workload &w)
{
    return w.ctx->add(
        w.ctx->mulPlain(w.ctx->add(w.ct_a, w.ct_b), w.pt), w.ct_b);
}

/**
 * The same chain for a system that re-enters coefficient form after
 * every op: the input ciphertexts are already coefficient-resident
 * (converted once, outside any timed region), the multiply converts
 * into the evaluation domain and back out, and the adds run on
 * coefficients.
 */
Ciphertext
coeffChain(const Workload &w)
{
    Ciphertext m =
        w.ctx->mulPlain(w.ctx->add(w.ct_a_coeff, w.ct_b_coeff), w.pt);
    w.ctx->toCoeff(m);
    return w.ctx->add(m, w.ct_b_coeff);
}

bool
identical(const Ciphertext &a, const Ciphertext &b)
{
    return a.c0 == b.c0 && a.c1 == b.c1;
}

void
fail(const char *what)
{
    std::fprintf(stderr, "FAIL: %s\n", what);
    std::exit(1);
}

Workload
makeWorkload(const std::shared_ptr<RpuDevice> &device, uint64_t n,
             size_t towers)
{
    RlweParams params;
    params.n = n;
    params.towers = towers;
    params.towerBits = 45;
    params.plaintextModulus = 65537;
    params.noiseBound = 4;

    Workload w;
    w.ctx = std::make_unique<BfvContext>(params, towers);
    w.ctx->attachDevice(device);
    const SecretKey sk = w.ctx->keygen();

    Rng rng(uint64_t(towers) * 2027 + 5);
    std::vector<uint64_t> a(n), b(n), p(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = rng.below64(params.plaintextModulus);
        b[i] = rng.below64(params.plaintextModulus);
        p[i] = rng.below64(params.plaintextModulus);
    }
    w.pt = w.ctx->encodePlain(p);
    w.ct_a = w.ctx->encrypt(sk, a);
    w.ct_b = w.ctx->encrypt(sk, b);
    w.ct_a_coeff = w.ct_a;
    w.ct_b_coeff = w.ct_b;
    w.ctx->toCoeff(w.ct_a_coeff);
    w.ctx->toCoeff(w.ct_b_coeff);

    // Golden result (serial), in coefficient form for comparisons —
    // and the retained wide-modulus reference decrypt must agree
    // with the RNS decrypt on it bit for bit.
    w.expected = evalChain(w);
    if (w.ctx->decrypt(sk, w.expected) !=
        w.ctx->decryptWideReference(sk, w.expected))
        fail("RNS decrypt diverges from the wide-modulus reference");
    w.ctx->toCoeff(w.expected);
    return w;
}

/**
 * Chains/second; every run is checked against the golden result.
 * With min_seconds > 0 the measurement repeats until that much wall
 * clock has elapsed, so ratios taken over it (the 1.5x speedup gate)
 * are not at the mercy of a single scheduler preemption on a shared
 * CI runner.
 */
double
throughput(const Workload &w, int reps, bool eval_resident,
           double min_seconds = 0.0)
{
    // Warm-up run doubles as the bit-identity check.
    Ciphertext got = eval_resident ? evalChain(w) : coeffChain(w);
    if (eval_resident)
        w.ctx->toCoeff(got);
    if (!identical(got, w.expected))
        fail("chain result diverges from the serial golden run");

    const auto t0 = Clock::now();
    int done = 0;
    do {
        for (int r = 0; r < reps; ++r) {
            if (eval_resident)
                evalChain(w);
            else
                coeffChain(w);
        }
        done += reps;
    } while (secondsSince(t0) < min_seconds);
    return done / secondsSince(t0);
}

/** One-chain transform ledger for one path, printed as a table row. */
void
transformRow(const Workload &w, const std::shared_ptr<RpuDevice> &dev,
             bool eval_resident)
{
    dev->resetCounters();
    const Ciphertext got =
        eval_resident ? evalChain(w) : coeffChain(w);
    (void)got;
    const DeviceStats s = dev->stats();
    std::printf("%8zu  %14s  %8llu  %8llu  %10llu  %8llu  %8llu\n",
                w.ct_a.towers(),
                eval_resident ? "eval-resident" : "coeff-resident",
                (unsigned long long)s.forwardTransforms,
                (unsigned long long)s.inverseTransforms,
                (unsigned long long)s.pointwiseMuls,
                (unsigned long long)s.transformsElided,
                (unsigned long long)s.launches);
    if (eval_resident && s.transformsIssued() != 0)
        fail("eval-resident chain issued a device NTT");
}

} // namespace
} // namespace rpu

int
main()
{
    using namespace rpu;

    const uint64_t n = 1024;
    const int reps = 3;
    const std::vector<size_t> tower_counts = {2, 3, 4};
    const std::vector<unsigned> worker_counts = {1, 2, 4, 8};

    bench::header("BFV add->mulPlain->add chain: RNS residency");
    std::printf("n = %llu, 45-bit towers, t = 65537, %d reps/cell, "
                "host cores = %u, host SIMD = %s (%s)\n",
                (unsigned long long)n, reps,
                std::thread::hardware_concurrency(),
                simd::hostSimdModeName(), simd::hostSimdIsa());

    const auto device = std::make_shared<RpuDevice>();

    // -- Transform ledger: what each path launches per chain ----------
    std::printf("\nper-chain device transform counts (serial "
                "backend)\n");
    std::printf("%8s  %14s  %8s  %8s  %10s  %8s  %8s\n", "towers",
                "path", "ntt-fwd", "ntt-inv", "pointwise", "elided",
                "launches");
    bench::rule('-', 76);
    std::vector<Workload> workloads;
    for (size_t towers : tower_counts)
        workloads.push_back(makeWorkload(device, n, towers));
    for (const Workload &w : workloads) {
        transformRow(w, device, false);
        transformRow(w, device, true);
    }
    std::printf("(eval-resident rows must show ntt-fwd = ntt-inv = 0: "
                "the chain is host tower\n adds plus pointwise "
                "launches; 'elided' counts conversions skipped)\n");

    // -- Residency speedup on the serial backend ----------------------
    std::printf("\nchains/s on the serial backend\n");
    std::printf("%8s  %16s  %16s  %10s\n", "towers", "coeff-resident",
                "eval-resident", "speedup");
    bench::rule('-', 58);
    for (const Workload &w : workloads) {
        const double coeff = throughput(w, reps, false, 0.25);
        const double eval = throughput(w, reps, true, 0.25);
        std::printf("%8zu  %16.2f  %16.2f  %9.2fx\n", w.ct_a.towers(),
                    coeff, eval, eval / coeff);
        // The residency win is a hard gate, not just a report: each
        // side is measured over >= 0.25 s of wall clock and the
        // margin is well above the threshold, so tripping this means
        // a real regression (e.g. a stray conversion that still nets
        // out bit-identical), not runner noise.
        if (eval < 1.5 * coeff)
            fail("eval-resident chain speedup fell below 1.5x");
    }

    // -- Pool scaling of the eval-resident chain ----------------------
    std::printf("\neval-resident chains/s vs worker count "
                "(speedup vs 1 worker)\n");
    std::printf("%8s", "towers");
    for (unsigned wkr : worker_counts)
        std::printf("  %18u", wkr);
    std::printf("\n");
    bench::rule('-', 8 + 20 * int(worker_counts.size()));
    for (const Workload &w : workloads) {
        std::printf("%8zu", w.ct_a.towers());
        double serial = 0.0;
        for (unsigned wkr : worker_counts) {
            device->setParallelism(wkr);
            const double ops = throughput(w, reps, true);
            if (wkr == 1)
                serial = ops;
            std::printf("  %10.2f (%4.2fx)", ops,
                        serial > 0 ? ops / serial : 0.0);
        }
        device->setParallelism(1);
        std::printf("\n");
    }

    std::printf("\nPASS: eval- and coeff-resident chains bit-identical "
                "across every backend configuration, RNS decrypt "
                "matches the wide-modulus reference, zero device NTTs "
                "and >= 1.5x serial speedup for the eval-resident "
                "chain\n");
    return 0;
}
