/**
 * @file
 * Fig. 5 reproduction:
 *   (a) RPU area breakdown sweeping VDM banks at 128 HPLEs,
 *   (b) sweeping HPLEs at 128 VDM banks,
 *   (c) 64K NTT energy breakdown on the (128,128) RPU.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "model/comparisons.hh"

using namespace rpu;

namespace {

void
areaRow(const char *label, unsigned h, unsigned b)
{
    RpuConfig cfg;
    cfg.numHples = h;
    cfg.numBanks = b;
    const AreaBreakdown a = rpuArea(cfg);
    std::printf("  %-10s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f %7.2f\n",
                label, a.im, a.vdm, a.vrf, a.lawEngine, a.vbar, a.sbar,
                a.total());
}

} // namespace

int
main()
{
    bench::header("Fig. 5(a): area breakdown, 128 HPLEs, sweeping banks");
    std::printf("  %-10s %6s %6s %6s %6s %6s %6s %7s  (mm^2)\n", "banks",
                "IM", "VDM", "VRF", "LAW", "VBAR", "SBAR", "total");
    bench::rule();
    for (unsigned b : bench::bankSweep())
        areaRow(std::to_string(b).c_str(), 128, b);

    bench::header("Fig. 5(b): area breakdown, 128 banks, sweeping HPLEs");
    std::printf("  %-10s %6s %6s %6s %6s %6s %6s %7s  (mm^2)\n", "HPLEs",
                "IM", "VDM", "VRF", "LAW", "VBAR", "SBAR", "total");
    bench::rule();
    for (unsigned h : bench::hpleSweep())
        areaRow(std::to_string(h).c_str(), h, 128);

    bench::header("Fig. 5(c): 64K NTT energy breakdown on (128,128)");
    NttRunner runner(65536, 124);
    RpuConfig cfg;
    NttCodegenOptions opts;
    opts.scheduleConfig = cfg;
    const KernelMetrics m = runner.evaluate(runner.makeKernel(opts), cfg);
    const EnergyBreakdown &e = m.energy;
    const PaperReference ref = paperReference();

    std::printf("  %-8s %12s %10s %14s\n", "", "energy (uJ)", "share",
                "paper share");
    bench::rule();
    const auto row = [&](const char *name, double uj, double paper) {
        std::printf("  %-8s %12.2f %9.1f%% %13.1f%%\n", name, uj,
                    e.share(uj), paper);
    };
    row("LAW", e.lawUj, ref.lawSharePct);
    row("VRF", e.vrfUj, ref.vrfSharePct);
    row("VDM", e.vdmUj, ref.vdmSharePct);
    row("VBAR", e.vbarUj, ref.vbarSharePct);
    row("SBAR", e.sbarUj, ref.sbarSharePct);
    row("IM", e.imUj, 0.1);
    bench::rule();
    std::printf("  total energy: %.2f uJ (paper: %.2f uJ)\n", e.totalUj(),
                ref.ntt64kEnergyUj);
    std::printf("  runtime: %.2f us -> average power %.2f W (paper: "
                "%.2f W)\n",
                m.runtimeUs, m.powerW, ref.averagePowerW);
    return 0;
}
