/**
 * @file
 * Ablations for the design choices this reproduction had to make
 * beyond the paper's text (DESIGN.md sections 2-4):
 *
 *  1. busyboard reader semantics: concurrent readers (our default)
 *     vs strict any-use-blocks;
 *  2. queue depth of the three decoupled pipelines;
 *  3. front-end dispatch width (the paper's front-end is single-issue);
 *  4. twiddle materialisation: broadcast/unpack composition vs
 *     plan-vector loads only;
 *  5. list scheduling vs emission order (for the optimized allocator);
 *  6. fused polynomial multiplication vs three kernel launches.
 *
 * All on the flagship 64K NTT at (128,128) unless noted.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "codegen/scheduler.hh"
#include "sim/cycle/simulator.hh"

using namespace rpu;

int
main()
{
    NttRunner runner(65536, 124);
    RpuConfig base;
    NttCodegenOptions opts;
    opts.scheduleConfig = base;
    const NttKernel kernel = runner.makeKernel(opts);

    bench::header("Ablation 1: busyboard reader semantics");
    {
        RpuConfig strict = base;
        strict.exclusiveReaders = true;
        const uint64_t shared =
            simulateCycles(kernel.program, base).cycles;
        const uint64_t excl =
            simulateCycles(kernel.program, strict).cycles;
        std::printf("  concurrent readers: %8llu cycles\n"
                    "  exclusive readers:  %8llu cycles (+%.1f%%)\n"
                    "  -> twiddle-register reuse depends on shared "
                    "read tracking\n",
                    (unsigned long long)shared, (unsigned long long)excl,
                    100.0 * (double(excl) / double(shared) - 1.0));
    }

    bench::header("Ablation 2: decoupled queue depth");
    for (unsigned depth : {2u, 4u, 8u, 16u, 32u}) {
        RpuConfig cfg = base;
        cfg.queueDepth = depth;
        const CycleStats s = simulateCycles(kernel.program, cfg);
        std::printf("  depth %2u: %8llu cycles (%llu queue-full stall "
                    "cycles)\n",
                    depth, (unsigned long long)s.cycles,
                    (unsigned long long)s.queueFullStallCycles);
    }

    bench::header("Ablation 3: front-end dispatch width");
    for (unsigned width : {1u, 2u, 4u}) {
        RpuConfig cfg = base;
        cfg.dispatchWidth = width;
        const CycleStats s = simulateCycles(kernel.program, cfg);
        std::printf("  width %u: %8llu cycles\n", width,
                    (unsigned long long)s.cycles);
    }
    std::printf("  -> the in-order busyboard, not fetch bandwidth, "
                "limits the front-end\n");

    bench::header("Ablation 4: twiddle composition vs plan loads only");
    {
        NttCodegenOptions no_compose = opts;
        no_compose.twiddleCompose = false;
        const NttKernel plan_only = runner.makeKernel(no_compose);
        const KernelMetrics a = runner.evaluate(kernel, base);
        const KernelMetrics b = runner.evaluate(plan_only, base);
        std::printf("  composed:   %8llu cycles, %4llu shuffles, %4llu "
                    "loads, %5zu KiB plan\n",
                    (unsigned long long)a.cycle.cycles,
                    (unsigned long long)a.cycle.mix.shuffles,
                    (unsigned long long)a.cycle.mix.loads,
                    kernel.twPlanImage.size() * 16 / 1024);
        std::printf("  plan-only:  %8llu cycles, %4llu shuffles, %4llu "
                    "loads, %5zu KiB plan\n",
                    (unsigned long long)b.cycle.cycles,
                    (unsigned long long)b.cycle.mix.shuffles,
                    (unsigned long long)b.cycle.mix.loads,
                    plan_only.twPlanImage.size() * 16 / 1024);
        std::printf("  -> composition trades SBAR work for VDM "
                    "capacity (%zu -> %zu KiB)\n",
                    plan_only.twPlanImage.size() * 16 / 1024,
                    kernel.twPlanImage.size() * 16 / 1024);
    }

    bench::header("Ablation 5: list scheduling vs emission order");
    {
        // Same optimized register allocation, scheduler disabled by
        // rebuilding from the unscheduled emission (the naive kernel
        // differs in allocation too, so build a mid-point: schedule
        // the unoptimized emission).
        NttCodegenOptions naive = opts;
        naive.optimized = false;
        const NttKernel unopt = runner.makeKernel(naive);
        const Program rescheduled =
            scheduleProgram(unopt.program, base);
        const uint64_t emission =
            simulateCycles(unopt.program, base).cycles;
        const uint64_t scheduled =
            simulateCycles(rescheduled, base).cycles;
        const uint64_t full =
            simulateCycles(kernel.program, base).cycles;
        std::printf("  LIFO alloc, emission order:  %8llu cycles\n",
                    (unsigned long long)emission);
        std::printf("  LIFO alloc, list-scheduled:  %8llu cycles\n",
                    (unsigned long long)scheduled);
        std::printf("  FIFO alloc, list-scheduled:  %8llu cycles\n",
                    (unsigned long long)full);
        std::printf("  -> allocation and scheduling contribute "
                    "%.2fx and %.2fx\n",
                    double(scheduled) / double(full),
                    double(emission) / double(scheduled));
    }

    bench::header("Ablation 6: fused polymul vs three launches (n=16K)");
    {
        NttRunner r16(16384, 124);
        const PolyMulKernel fused = r16.makePolyMulKernel(opts);
        const KernelMetrics fm = r16.evaluateProgram(
            fused.program, fused.vdmBytesRequired, base);
        const NttKernel fwd = r16.makeKernel(opts);
        NttCodegenOptions inv = opts;
        inv.inverse = true;
        const uint64_t three =
            2 * r16.evaluate(fwd, base).cycle.cycles +
            r16.evaluate(r16.makeKernel(inv), base).cycle.cycles;
        std::printf("  fused single launch: %8llu cycles (verified "
                    "%s)\n",
                    (unsigned long long)fm.cycle.cycles,
                    r16.verifyPolyMul(fused) ? "ok" : "FAIL");
        std::printf("  three launches:      %8llu cycles\n",
                    (unsigned long long)three);
        std::printf("  -> fusing saves %.0f%%\n",
                    100.0 * (1.0 - double(fm.cycle.cycles) /
                                       double(three)));
    }
    return 0;
}
