/**
 * @file
 * Fig. 3 reproduction: 64K NTT area-latency trade-off sweeping the
 * number of HPLEs and VDM banks; Pareto-optimal designs are marked
 * (HPLEs, banks) as in the paper.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"

using namespace rpu;

int
main()
{
    bench::header("Fig. 3: 64K NTT area-latency trade-off");
    NttRunner runner(65536, 124);
    const auto points = bench::sweep64k(runner);
    const auto front = bench::paretoFront(points);

    std::printf("  %-7s %-7s %12s %12s %8s\n", "HPLEs", "banks",
                "runtime (us)", "area (mm^2)", "Pareto");
    bench::rule();
    for (const auto &p : points) {
        const bool pareto =
            std::any_of(front.begin(), front.end(),
                        [&](const bench::SweepPoint *q) {
                            return q == &p;
                        });
        std::printf("  %-7u %-7u %12.2f %12.2f %8s\n", p.hples, p.banks,
                    p.metrics.runtimeUs, p.metrics.area.total(),
                    pareto ? "*" : "");
    }
    bench::rule();
    std::printf("  Pareto front: ");
    for (const auto *p : front)
        std::printf("(%u, %u) ", p->hples, p->banks);
    std::printf("\n  paper's Pareto set: (4,32) (8,32) (8,64) (16,32) "
                "(16,64) (32,32) (32,64)\n"
                "                      (32,128) (64,32) (64,64) "
                "(64,128) (128,64) (128,128)\n"
                "                      (256,128) (256,256)\n");
    std::printf("  paper trend checks: (4,256)/(4,32) runtime %.2fx "
                "(paper ~0.75x), area %.2fx (paper ~2.5x)\n",
                points[3].metrics.runtimeUs / points[0].metrics.runtimeUs,
                points[3].metrics.area.total() /
                    points[0].metrics.area.total());
    const auto &p256_32 = points[points.size() - 4];
    const auto &p256_256 = points.back();
    std::printf("                      (256,32)->(256,256) runtime "
                "%.2fx faster (paper ~3.5x), area +%.0f%% (paper "
                "~20%%)\n",
                p256_32.metrics.runtimeUs / p256_256.metrics.runtimeUs,
                100.0 * (p256_256.metrics.area.total() /
                             p256_32.metrics.area.total() -
                         1.0));
    return 0;
}
