/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: aligned
 * table printing, the PASS/FAIL gate plumbing the throughput benches
 * share, and the standard design-point sweep used by Figs. 3 and 4.
 */

#ifndef RPU_BENCH_BENCH_UTIL_HH
#define RPU_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rpu/runner.hh"

namespace rpu::bench {

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
rule(char c = '-', int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** The throughput benches' shared gate-failure path: print
 *  "FAIL: <what>" and exit 1. CI greps stdout for the final PASS
 *  line and treats the nonzero exit as a job failure. */
[[noreturn]] inline void
fail(const char *what)
{
    std::fprintf(stderr, "FAIL: %s\n", what);
    std::exit(1);
}

inline double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** p-th percentile of an ascending-sorted sample (ceil-rank,
 *  inclusive — the convention the latency tables report). */
inline double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t rank = size_t(std::ceil(p * double(sorted.size())));
    return sorted[std::min(sorted.size() - 1,
                           rank == 0 ? size_t(0) : rank - 1)];
}

/** The paper's DSE axes (Figs. 3 and 4). */
inline const std::vector<unsigned> &
hpleSweep()
{
    static const std::vector<unsigned> v = {4, 8, 16, 32, 64, 128, 256};
    return v;
}

inline const std::vector<unsigned> &
bankSweep()
{
    static const std::vector<unsigned> v = {32, 64, 128, 256};
    return v;
}

/** One evaluated design point of the 64K-NTT design-space sweep. */
struct SweepPoint
{
    unsigned hples;
    unsigned banks;
    KernelMetrics metrics;
};

/**
 * Evaluate the optimized 64K NTT across the full (HPLEs, banks) grid,
 * regenerating/rescheduling the kernel per design point exactly as
 * the paper's SPIRAL flow does.
 */
inline std::vector<SweepPoint>
sweep64k(const NttRunner &runner)
{
    std::vector<SweepPoint> points;
    for (unsigned h : hpleSweep()) {
        for (unsigned b : bankSweep()) {
            RpuConfig cfg;
            cfg.numHples = h;
            cfg.numBanks = b;
            NttCodegenOptions opts;
            opts.scheduleConfig = cfg;
            points.push_back(
                {h, b, runner.evaluate(runner.makeKernel(opts), cfg)});
        }
    }
    return points;
}

/** Pareto-optimal subset (minimise runtime and area). */
inline std::vector<const SweepPoint *>
paretoFront(const std::vector<SweepPoint> &points)
{
    std::vector<const SweepPoint *> front;
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &q : points) {
            const bool no_worse =
                q.metrics.runtimeUs <= p.metrics.runtimeUs &&
                q.metrics.area.total() <= p.metrics.area.total();
            const bool better =
                q.metrics.runtimeUs < p.metrics.runtimeUs ||
                q.metrics.area.total() < p.metrics.area.total();
            if (no_worse && better) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(&p);
    }
    return front;
}

} // namespace rpu::bench

#endif // RPU_BENCH_BENCH_UTIL_HH
