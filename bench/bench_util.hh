/**
 * @file
 * Shared helpers for the figure/table reproduction binaries: aligned
 * table printing, the PASS/FAIL gate plumbing the throughput benches
 * share, and the standard design-point sweep used by Figs. 3 and 4.
 */

#ifndef RPU_BENCH_BENCH_UTIL_HH
#define RPU_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "rpu/runner.hh"
#include "serve/server.hh"

namespace rpu::bench {

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
rule(char c = '-', int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** The throughput benches' shared gate-failure path: print
 *  "FAIL: <what>" and exit 1. CI greps stdout for the final PASS
 *  line and treats the nonzero exit as a job failure. */
[[noreturn]] inline void
fail(const char *what)
{
    std::fprintf(stderr, "FAIL: %s\n", what);
    std::exit(1);
}

inline double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** p-th percentile of an ascending-sorted sample (ceil-rank,
 *  inclusive — the convention the latency tables report). */
inline double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t rank = size_t(std::ceil(p * double(sorted.size())));
    return sorted[std::min(sorted.size() - 1,
                           rank == 0 ? size_t(0) : rank - 1)];
}

/** The paper's DSE axes (Figs. 3 and 4). */
inline const std::vector<unsigned> &
hpleSweep()
{
    static const std::vector<unsigned> v = {4, 8, 16, 32, 64, 128, 256};
    return v;
}

inline const std::vector<unsigned> &
bankSweep()
{
    static const std::vector<unsigned> v = {32, 64, 128, 256};
    return v;
}

/** One evaluated design point of the 64K-NTT design-space sweep. */
struct SweepPoint
{
    unsigned hples;
    unsigned banks;
    KernelMetrics metrics;
};

/**
 * Evaluate the optimized 64K NTT across the full (HPLEs, banks) grid,
 * regenerating/rescheduling the kernel per design point exactly as
 * the paper's SPIRAL flow does.
 */
inline std::vector<SweepPoint>
sweep64k(const NttRunner &runner)
{
    std::vector<SweepPoint> points;
    for (unsigned h : hpleSweep()) {
        for (unsigned b : bankSweep()) {
            RpuConfig cfg;
            cfg.numHples = h;
            cfg.numBanks = b;
            NttCodegenOptions opts;
            opts.scheduleConfig = cfg;
            points.push_back(
                {h, b, runner.evaluate(runner.makeKernel(opts), cfg)});
        }
    }
    return points;
}

/** Pareto-optimal subset (minimise runtime and area). */
inline std::vector<const SweepPoint *>
paretoFront(const std::vector<SweepPoint> &points)
{
    std::vector<const SweepPoint *> front;
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &q : points) {
            const bool no_worse =
                q.metrics.runtimeUs <= p.metrics.runtimeUs &&
                q.metrics.area.total() <= p.metrics.area.total();
            const bool better =
                q.metrics.runtimeUs < p.metrics.runtimeUs ||
                q.metrics.area.total() < p.metrics.area.total();
            if (no_worse && better) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(&p);
    }
    return front;
}

// ----------------------------------------------------------------------
// Shared multi-tenant serving harness (serve_throughput and
// shard_throughput run the same tenants, payload derivation, serial
// calibration, and open-loop Poisson sweep — one copy lives here).
// ----------------------------------------------------------------------

/** The serving benches' tenant parameter set: CKKS n=1024, 3 towers
 *  of 45 bits, scale 2^40. */
inline CkksParams
serveTenantParams()
{
    CkksParams p;
    p.n = 1024;
    p.towers = 3;
    p.towerBits = 45;
    p.scale = 1099511627776.0; // 2^40
    p.noiseBound = 4;
    return p;
}

/** Deterministic request payloads: every (tenant, seq) maps to fixed
 *  slot values, so any response can be replayed serially for the
 *  bit-identity checks. */
inline std::vector<std::complex<double>>
slotValues(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::complex<double>> v(count);
    for (auto &z : v)
        z = {2.0 * rng.nextDouble() - 1.0, 2.0 * rng.nextDouble() - 1.0};
    return v;
}

/** One in-flight bench request: the submitted payload kept alongside
 *  the response future so the result can be re-derived serially. */
struct PendingServe
{
    uint64_t tenant = 0;
    uint64_t seq = 0;
    serve::RequestOp op = serve::RequestOp::MulPlainRescale;
    std::vector<std::complex<double>> a, b;
    std::future<serve::ServeResponse> response;
};

/** Serial-path capacity estimate: timed runSerial on a scratch
 *  session, after warmup. Open-loop arrival rates scale off this, so
 *  the same binary saturates on any machine or sanitizer. */
inline double
calibrateServeCapacity(const std::shared_ptr<RpuDevice> &device)
{
    serve::Session scratch({99, serveTenantParams(), 30}, device);
    const auto a = slotValues(16, 11);
    const auto b = slotValues(16, 22);
    for (int i = 0; i < 3; ++i) // warm kernels and caches
        (void)scratch.runSerial(serve::RequestOp::MulPlainRescale, a, b,
                                i);
    const int reps = 10;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        (void)scratch.runSerial(serve::RequestOp::MulPlainRescale, a, b,
                                100 + i);
    return double(reps) / secondsSince(t0);
}

/** One open-loop sweep result row (devices filled by the caller when
 *  the sweep varies topology size). */
struct OpenLoopRow
{
    size_t devices = 0;
    double offered = 0;   ///< requested arrival rate (ops/s)
    double sustained = 0; ///< completions / wall time
    size_t accepted = 0;
    size_t rejected = 0;
    double p50 = 0, p99 = 0, p999 = 0; ///< total latency, micros
};

/**
 * Drive @p server with @p requests open-loop Poisson arrivals at
 * @p rate over @p tenants tenants (ids 1..tenants, expected to exist
 * and be prewarmed), then drain it and report sustained throughput,
 * rejection counts, and latency percentiles.
 *
 * Open loop: the next arrival time is scheduled from the Poisson
 * process alone — if the server is slow, submissions do not slow down
 * with it, so queueing delay and backpressure rejections surface
 * exactly as they would behind real tenants (no coordinated
 * omission). Payload seeds are fixed per (tenant, seq) and the seq
 * advances even for rejected arrivals, so every 16th accepted
 * response is spot-checked bit-identical against runSerial; any
 * failed request or accepted-vs-completed mismatch is a gate failure.
 */
inline OpenLoopRow
runServeOpenLoop(serve::HeServer &server, double rate, size_t requests,
                 size_t tenants)
{
    using Clock = std::chrono::steady_clock;

    std::vector<PendingServe> accepted;
    accepted.reserve(requests);
    size_t rejected = 0;

    std::mt19937_64 gen(12345);
    std::exponential_distribution<double> interval(rate);
    const auto start = Clock::now();
    auto next = start;
    std::vector<uint64_t> seqs(tenants, 0);
    for (size_t i = 0; i < requests; ++i) {
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(interval(gen)));
        std::this_thread::sleep_until(next);
        const uint64_t tenant = 1 + i % tenants;
        PendingServe p;
        p.tenant = tenant;
        p.op = serve::RequestOp::MulPlainRescale;
        p.a = slotValues(16, 40 * tenant + seqs[tenant - 1]);
        p.b = slotValues(16, 7000 + seqs[tenant - 1]);
        auto sub = server.submit(tenant, p.op, p.a, p.b);
        ++seqs[tenant - 1]; // seq advances even for rejected requests
        if (sub.status == serve::SubmitStatus::Accepted) {
            p.seq = seqs[tenant - 1] - 1;
            p.response = std::move(sub.response);
            accepted.push_back(std::move(p));
        } else {
            ++rejected;
        }
    }
    server.shutdown();
    const double wall = secondsSince(start);

    std::vector<double> totals;
    totals.reserve(accepted.size());
    for (size_t i = 0; i < accepted.size(); ++i) {
        serve::ServeResponse resp = accepted[i].response.get();
        totals.push_back(resp.totalMicros);
        // Saturation must never corrupt results.
        if (i % 16 == 0) {
            const serve::Session *sess = server.tenant(accepted[i].tenant);
            if (resp.values != sess->runSerial(accepted[i].op,
                                               accepted[i].a,
                                               accepted[i].b,
                                               accepted[i].seq))
                fail("open-loop response diverges from serial reference");
        }
    }
    const auto stats = server.stats();
    if (stats.failed != 0)
        fail("open-loop run reported failed requests");
    if (stats.completed != accepted.size())
        fail("accepted and completed counts disagree after drain");

    std::sort(totals.begin(), totals.end());
    OpenLoopRow row;
    row.offered = rate;
    row.sustained = double(accepted.size()) / wall;
    row.accepted = accepted.size();
    row.rejected = rejected;
    row.p50 = percentile(totals, 0.50);
    row.p99 = percentile(totals, 0.99);
    row.p999 = percentile(totals, 0.999);
    return row;
}

} // namespace rpu::bench

#endif // RPU_BENCH_BENCH_UTIL_HH
